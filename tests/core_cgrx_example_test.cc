// Tests of cgRX on the paper's running example (Figures 4-7): 13 keys
// {2,4,5,6,12,17,18,19,19,19,19,19,22}, bucket size 3, example mapping
// k -> (k2:0, k4:3, k63:5). These nail down the exact construction and
// lookup semantics of Algorithms 1-3 before the randomized suites run.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/cgrx_index.h"
#include "src/util/key_mapping.h"

namespace cgrx::core {
namespace {

using ::cgrx::util::KeyMapping;

// The example key set of Figure 4 (already sorted; rowIDs follow the
// figure's key-rowID array).
std::vector<std::uint64_t> ExampleKeys() {
  return {2, 4, 5, 6, 12, 17, 18, 19, 19, 19, 19, 19, 22};
}

std::vector<std::uint32_t> ExampleRowIds() {
  return {3, 7, 1, 8, 2, 0, 12, 6, 9, 10, 4, 11, 5};
}

CgrxConfig ExampleConfig(Representation representation) {
  CgrxConfig config;
  config.bucket_size = 3;
  config.representation = representation;
  config.mapping_override = KeyMapping::Example();
  return config;
}

class CgrxExampleTest : public ::testing::TestWithParam<Representation> {};

TEST_P(CgrxExampleTest, BucketPartitioningMatchesFigure4) {
  CgrxIndex64 index(ExampleConfig(GetParam()));
  index.Build(ExampleKeys(), ExampleRowIds());
  ASSERT_EQ(index.num_buckets(), 5u);
  // Representatives 5, 17, 19, 19, 22 (bucket 3 is a duplicate of 19).
  EXPECT_EQ(index.buckets().RepKey(0), 5u);
  EXPECT_EQ(index.buckets().RepKey(1), 17u);
  EXPECT_EQ(index.buckets().RepKey(2), 19u);
  EXPECT_EQ(index.buckets().RepKey(3), 19u);
  EXPECT_EQ(index.buckets().RepKey(4), 22u);
  EXPECT_TRUE(index.multi_line());
  EXPECT_FALSE(index.multi_plane());
}

TEST_P(CgrxExampleTest, LookupOfKey2ReturnsRowId3) {
  // Figure 4: the representative of bucket 0 is in the same row as
  // key 2; a single ray resolves the lookup.
  CgrxIndex64 index(ExampleConfig(GetParam()));
  index.Build(ExampleKeys(), ExampleRowIds());
  int rays = 0;
  const LookupResult r = index.PointLookup(2, &rays);
  EXPECT_EQ(r.match_count, 1u);
  EXPECT_EQ(r.row_id_sum, 3u);
  // Key 2 < minRep (5), so the paper short-circuits to bucket 0 without
  // firing any ray at all.
  EXPECT_EQ(rays, 0);
}

TEST_P(CgrxExampleTest, LookupOfKey6CrossesRows) {
  // Figure 5 (naive): key 6 needs the y-ray to the row marker of row
  // y=2 plus a follow-up x-ray (3 rays total). Figure 7 (optimized):
  // the new representative "7" at the end of row 0 answers it with a
  // single ray.
  CgrxIndex64 index(ExampleConfig(GetParam()));
  index.Build(ExampleKeys(), ExampleRowIds());
  int rays = 0;
  const LookupResult r = index.PointLookup(6, &rays);
  EXPECT_EQ(r.match_count, 1u);
  EXPECT_EQ(r.row_id_sum, 8u);
  if (GetParam() == Representation::kNaive) {
    EXPECT_EQ(rays, 3);
  } else {
    EXPECT_EQ(rays, 1);
  }
}

TEST_P(CgrxExampleTest, AllKeysAreFound) {
  CgrxIndex64 index(ExampleConfig(GetParam()));
  index.Build(ExampleKeys(), ExampleRowIds());
  const auto keys = ExampleKeys();
  const auto rows = ExampleRowIds();
  // Expected aggregate per key value (duplicates aggregate).
  for (std::size_t i = 0; i < keys.size(); ++i) {
    std::uint64_t expected_sum = 0;
    std::uint64_t expected_count = 0;
    for (std::size_t j = 0; j < keys.size(); ++j) {
      if (keys[j] == keys[i]) {
        expected_sum += rows[j];
        ++expected_count;
      }
    }
    const LookupResult r = index.PointLookup(keys[i]);
    EXPECT_EQ(r.match_count, expected_count) << "key " << keys[i];
    EXPECT_EQ(r.row_id_sum, expected_sum) << "key " << keys[i];
  }
}

TEST_P(CgrxExampleTest, MissesAreDetected) {
  CgrxIndex64 index(ExampleConfig(GetParam()));
  index.Build(ExampleKeys(), ExampleRowIds());
  for (std::uint64_t miss : {0ULL, 1ULL, 3ULL, 7ULL, 8ULL, 11ULL, 13ULL,
                             16ULL, 20ULL, 21ULL, 23ULL, 100ULL, 1ULL << 40}) {
    const LookupResult r = index.PointLookup(miss);
    EXPECT_TRUE(r.IsMiss()) << "expected miss for " << miss;
  }
}

TEST_P(CgrxExampleTest, DuplicateLookupAggregatesAcrossBuckets) {
  // Key 19 occurs five times, spanning buckets 2 and 3 (Figure 6's
  // duplicate discussion); the scan stops at 22.
  CgrxIndex64 index(ExampleConfig(GetParam()));
  index.Build(ExampleKeys(), ExampleRowIds());
  const LookupResult r = index.PointLookup(19);
  EXPECT_EQ(r.match_count, 5u);
  EXPECT_EQ(r.row_id_sum, 6u + 9u + 10u + 4u + 11u);
}

TEST_P(CgrxExampleTest, RangeLookupsMatchReference) {
  CgrxIndex64 index(ExampleConfig(GetParam()));
  index.Build(ExampleKeys(), ExampleRowIds());
  const auto keys = ExampleKeys();
  const auto rows = ExampleRowIds();
  for (std::uint64_t lo = 0; lo <= 24; ++lo) {
    for (std::uint64_t hi = lo; hi <= 24; ++hi) {
      LookupResult expected;
      for (std::size_t j = 0; j < keys.size(); ++j) {
        if (keys[j] >= lo && keys[j] <= hi) expected.Accumulate(rows[j]);
      }
      const LookupResult r = index.RangeLookup(lo, hi);
      EXPECT_EQ(r, expected) << "range [" << lo << ", " << hi << "]";
    }
  }
}

TEST_P(CgrxExampleTest, RangeAboveMaxKeyIsEmpty) {
  CgrxIndex64 index(ExampleConfig(GetParam()));
  index.Build(ExampleKeys(), ExampleRowIds());
  EXPECT_TRUE(index.RangeLookup(23, 1000).IsMiss());
}

TEST(CgrxExampleOptimized, MovedAndAuxiliaryRepresentativesOfFigure7) {
  // Figure 7: bucket 0's rep 5 cannot move (key 6 follows in-row) and
  // spawns auxiliary representative "7" at x=7; rep 22 moves to x=7
  // ("23"). No plane markers exist (single plane).
  CgrxIndex64 index(ExampleConfig(Representation::kOptimized));
  index.Build(ExampleKeys(), ExampleRowIds());
  const auto& soup = index.scene().soup();
  ASSERT_EQ(soup.size(), 10u);  // (1 + multiLine) * numBuckets.
  // Slot 0: rep 5 at its natural position x=5,y=0.
  EXPECT_TRUE(soup.IsActive(0));
  // Slot 4: rep 22 moved to x=7 (row y=2).
  EXPECT_TRUE(soup.IsActive(4));
  // Slot 3 (duplicate 19, not movable): skipped.
  EXPECT_FALSE(soup.IsActive(3));
  // Slot 5 = bucket 0's auxiliary row marker ("7").
  EXPECT_TRUE(soup.IsActive(5));
  // Row y=2 ends with the moved rep, so bucket 4 needs no aux marker.
  EXPECT_FALSE(soup.IsActive(9));
}

TEST(CgrxExampleNaive, MarkerLayoutOfFigure4) {
  // Naive representation: row markers R0 (row of rep 5) and R1 (row of
  // rep 17); representative of bucket 3 (duplicate 19) skipped.
  CgrxIndex64 index(ExampleConfig(Representation::kNaive));
  index.Build(ExampleKeys(), ExampleRowIds());
  const auto& soup = index.scene().soup();
  ASSERT_EQ(soup.size(), 10u);
  EXPECT_TRUE(soup.IsActive(0));   // rep 5
  EXPECT_TRUE(soup.IsActive(1));   // rep 17
  EXPECT_TRUE(soup.IsActive(2));   // rep 19
  EXPECT_FALSE(soup.IsActive(3));  // duplicate 19
  EXPECT_TRUE(soup.IsActive(4));   // rep 22
  EXPECT_TRUE(soup.IsActive(5));   // marker R0 (bucket 0 first in row 0)
  EXPECT_TRUE(soup.IsActive(6));   // marker R1 (bucket 1 first in row 2)
  EXPECT_FALSE(soup.IsActive(7));  // bucket 2 same row as bucket 1
  EXPECT_FALSE(soup.IsActive(8));
  EXPECT_FALSE(soup.IsActive(9));
}

INSTANTIATE_TEST_SUITE_P(Representations, CgrxExampleTest,
                         ::testing::Values(Representation::kNaive,
                                           Representation::kOptimized),
                         [](const auto& info) {
                           return info.param == Representation::kNaive
                                      ? "Naive"
                                      : "Optimized";
                         });

}  // namespace
}  // namespace cgrx::core
