// Unit and property tests for the util substrate: key mappings (bit
// slicing, float32 exactness, scaling), radix sort, Zipf sampling,
// workload generators, RNG and the work-stealing task scheduler
// (steal correctness, reentrancy, exception propagation, fork/join
// determinism -- the TaskScheduler.* cases run under the TSan CI job).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/key_mapping.h"
#include "src/util/radix_sort.h"
#include "src/util/rng.h"
#include "src/util/table_printer.h"
#include "src/util/task_scheduler.h"
#include "src/util/thread_pool.h"
#include "src/util/workloads.h"
#include "src/util/zipf.h"

namespace cgrx::util {
namespace {

// ---------------------------------------------------------------------
// KeyMapping.
// ---------------------------------------------------------------------

TEST(KeyMapping, SlicesTheDocumentedBitRanges64) {
  const KeyMapping m = KeyMapping::Rx64Unscaled();
  // k -> (k22:0, k45:23, k63:46).
  const std::uint64_t k = 0xABCDEF0123456789ULL;
  const GridCoords g = m.GridOf(k);
  EXPECT_EQ(g.x, k & 0x7fffff);
  EXPECT_EQ(g.y, (k >> 23) & 0x7fffff);
  EXPECT_EQ(g.z, (k >> 46) & 0x3ffff);
}

TEST(KeyMapping, SlicesTheDocumentedBitRanges32) {
  const KeyMapping m = KeyMapping::Rx32Unscaled();
  const std::uint64_t k = 0x89ABCDEF;
  const GridCoords g = m.GridOf(k);
  EXPECT_EQ(g.x, k & 0x7fffff);
  EXPECT_EQ(g.y, k >> 23);
  EXPECT_EQ(g.z, 0u);
}

TEST(KeyMapping, RoundTripsRandomKeys) {
  Rng rng(1);
  for (const KeyMapping& m :
       {KeyMapping::Rx64Unscaled(), KeyMapping::Rx64Scaled(),
        KeyMapping::Example()}) {
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t k =
          rng() & (m.key_bits() == 64 ? ~0ULL : ((1ULL << m.key_bits()) - 1));
      EXPECT_EQ(m.KeyOf(m.GridOf(k)), k);
    }
  }
}

TEST(KeyMapping, RoundTrips32BitKeys) {
  const KeyMapping m = KeyMapping::Rx32Scaled();
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t k = rng() & 0xffffffffULL;
    EXPECT_EQ(m.KeyOf(m.GridOf(k)), k);
  }
}

TEST(KeyMapping, RowAndPlaneKeysGroupCorrectly) {
  const KeyMapping m = KeyMapping::Example();  // x:3 bits, y:2 bits.
  EXPECT_EQ(m.RowKey(0), m.RowKey(7));    // Same row 0.
  EXPECT_NE(m.RowKey(7), m.RowKey(8));    // Row boundary at x wrap.
  EXPECT_EQ(m.PlaneKey(0), m.PlaneKey(31));
  EXPECT_NE(m.PlaneKey(31), m.PlaneKey(32));
}

TEST(KeyMapping, WorldCoordinatesAreExactAcrossTheGrid) {
  // Scaled world coordinates and their half-step offsets must be exact
  // float32 values over the full 23-bit grid: g * 2^s and
  // (2g +- 1) * 2^(s-1) need at most 24 significand bits.
  const KeyMapping m = KeyMapping::Rx64Scaled();
  for (const std::int64_t gy :
       {std::int64_t{0}, std::int64_t{1}, std::int64_t{12345},
        std::int64_t{1} << 22, (std::int64_t{1} << 23) - 1}) {
    const float y = m.WorldY(gy);
    const float half = 0.5f * m.step_y();
    // Exactness: the doubled value must reconstruct the integer grid.
    EXPECT_EQ(static_cast<double>(y),
              static_cast<double>(gy) * static_cast<double>(m.step_y()));
    const float y_lo = y - half;
    const float y_hi = y + half;
    EXPECT_EQ(static_cast<double>(y_hi) - static_cast<double>(y_lo),
              static_cast<double>(m.step_y()));
    EXPECT_LT(static_cast<double>(y_lo), static_cast<double>(y));
    EXPECT_GT(static_cast<double>(y_hi), static_cast<double>(y));
  }
}

TEST(KeyMapping, ScaledMappingIsOrderPreservingPerRow) {
  const KeyMapping m = KeyMapping::Rx64Scaled();
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t a = rng();
    const std::uint64_t b = rng();
    if (m.RowKey(a) != m.RowKey(b)) continue;
    const auto ga = m.GridOf(a);
    const auto gb = m.GridOf(b);
    EXPECT_EQ(a < b, ga.x < gb.x);
  }
}

// ---------------------------------------------------------------------
// Radix sort.
// ---------------------------------------------------------------------

class RadixSortTest : public ::testing::TestWithParam<int> {};

TEST_P(RadixSortTest, MatchesStdStableSort) {
  const int key_bits = GetParam();
  Rng rng(42);
  for (const std::size_t n : {0UL, 1UL, 2UL, 100UL, 4096UL, 100000UL}) {
    std::vector<std::uint64_t> keys(n);
    std::vector<std::uint32_t> vals(n);
    const std::uint64_t mask =
        key_bits == 64 ? ~0ULL : ((1ULL << key_bits) - 1);
    for (std::size_t i = 0; i < n; ++i) {
      keys[i] = rng() & mask;
      vals[i] = static_cast<std::uint32_t>(i);
    }
    std::vector<std::pair<std::uint64_t, std::uint32_t>> expected(n);
    for (std::size_t i = 0; i < n; ++i) expected[i] = {keys[i], vals[i]};
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    RadixSortPairs(&keys, &vals, key_bits);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(keys[i], expected[i].first);
      EXPECT_EQ(vals[i], expected[i].second);  // Stability.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(KeyWidths, RadixSortTest,
                         ::testing::Values(16, 32, 48, 64));

TEST(RadixSort, SortsDuplicateHeavyInputStably) {
  std::vector<std::uint64_t> keys = {5, 3, 5, 3, 5, 1, 3};
  std::vector<std::uint32_t> vals = {0, 1, 2, 3, 4, 5, 6};
  RadixSortPairs(&keys, &vals, 8);
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{1, 3, 3, 3, 5, 5, 5}));
  EXPECT_EQ(vals, (std::vector<std::uint32_t>{5, 1, 3, 6, 0, 2, 4}));
}

TEST(RadixSort, KeysOnly) {
  Rng rng(9);
  std::vector<std::uint64_t> keys(5000);
  for (auto& k : keys) k = rng();
  std::vector<std::uint64_t> expected = keys;
  std::sort(expected.begin(), expected.end());
  RadixSortKeys(&keys, 64);
  EXPECT_EQ(keys, expected);
}

// Above the parallel threshold the passes run chunked histogram +
// bucket-major scatter on the scheduler; the result must stay
// byte-identical to the serial passes (stability makes the output
// chunk-independent), including the permutation of duplicate keys.
TEST(RadixSort, ParallelPassesMatchSerialByteForByte) {
  Rng rng(42);
  std::vector<std::uint64_t> keys(1 << 17);
  std::vector<std::uint32_t> vals(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = rng.Below(1 << 12);  // Duplicate-heavy.
    vals[i] = static_cast<std::uint32_t>(i);
  }
  std::vector<std::uint64_t> serial_keys = keys;
  std::vector<std::uint32_t> serial_vals = vals;
  {
    TaskScheduler::SerialScope force_serial;
    RadixSortPairs(&serial_keys, &serial_vals, 12);
  }
  RadixSortPairs(&keys, &vals, 12);
  EXPECT_EQ(keys, serial_keys);
  EXPECT_EQ(vals, serial_vals);
}

// ---------------------------------------------------------------------
// Rng.
// ---------------------------------------------------------------------

TEST(Rng, IsDeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  Rng c(8);
  bool all_equal_c = true;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t va = a();
    EXPECT_EQ(va, b());
    if (va != c()) all_equal_c = false;
  }
  EXPECT_FALSE(all_equal_c);
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t v = rng.Below(10);
    ASSERT_LT(v, 10u);
    counts[static_cast<std::size_t>(v)]++;
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 100);
  }
}

// ---------------------------------------------------------------------
// Zipf.
// ---------------------------------------------------------------------

TEST(Zipf, ThetaZeroIsUniform) {
  ZipfGenerator zipf(100, 0.0);
  Rng rng(5);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) counts[zipf.Next(&rng)]++;
  const auto [min_it, max_it] = std::minmax_element(counts.begin(),
                                                    counts.end());
  EXPECT_GT(*min_it, 600);
  EXPECT_LT(*max_it, 1400);
}

class ZipfSkewTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSkewTest, RankZeroDominatesWithSkew) {
  const double theta = GetParam();
  ZipfGenerator zipf(1 << 16, theta);
  Rng rng(6);
  constexpr int kDraws = 50000;
  int rank0 = 0;
  for (int i = 0; i < kDraws; ++i) {
    const std::size_t r = zipf.Next(&rng);
    ASSERT_LT(r, std::size_t{1} << 16);
    if (r == 0) ++rank0;
  }
  // Under uniformity rank 0 gets ~0.76 draws; any real skew gives
  // orders of magnitude more.
  EXPECT_GT(rank0, 50);
  // Higher theta concentrates more mass on rank 0.
  if (theta >= 1.5) {
    EXPECT_GT(rank0, kDraws / 4);
  }
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfSkewTest,
                         ::testing::Values(0.5, 0.75, 1.0, 1.5, 2.0));

// ---------------------------------------------------------------------
// Workloads.
// ---------------------------------------------------------------------

TEST(Workloads, UniformityModelProducesDensePrefix) {
  KeySetConfig cfg;
  cfg.count = 10000;
  cfg.key_bits = 32;
  cfg.uniformity = 0.2;
  auto keys = MakeKeySet(cfg);
  ASSERT_EQ(keys.size(), cfg.count);
  std::sort(keys.begin(), keys.end());
  // The first 80% must be exactly 0..7999 (the dense part).
  for (std::size_t i = 0; i < 8000; ++i) EXPECT_EQ(keys[i], i);
  // The sparse part lies above the dense prefix.
  for (std::size_t i = 8000; i < keys.size(); ++i) {
    EXPECT_GE(keys[i], 8000u);
    EXPECT_LE(keys[i], 0xffffffffULL);
  }
}

TEST(Workloads, KeySetsAreDistinct) {
  for (const double uniformity : {0.0, 0.5, 1.0}) {
    KeySetConfig cfg;
    cfg.count = 20000;
    cfg.key_bits = 64;
    cfg.uniformity = uniformity;
    auto keys = MakeKeySet(cfg);
    std::sort(keys.begin(), keys.end());
    EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end())
        << "uniformity " << uniformity;
  }
}

TEST(Workloads, AllNineteenDistributionsGenerate) {
  ASSERT_EQ(AllKeyDistributions().size(), 19u);
  for (const KeyDistribution d : AllKeyDistributions()) {
    for (const int bits : {32, 64}) {
      const auto keys = MakeDistributedKeySet(d, 4096, bits, 99);
      EXPECT_EQ(keys.size(), 4096u) << ToString(d);
      if (bits == 32) {
        for (const auto k : keys) EXPECT_LE(k, 0xffffffffULL) << ToString(d);
      }
    }
  }
}

TEST(Workloads, DuplicateHeavyActuallyHasDuplicates) {
  auto keys = MakeDistributedKeySet(KeyDistribution::kDuplicateHeavy, 8192,
                                    64, 3);
  std::set<std::uint64_t> distinct(keys.begin(), keys.end());
  EXPECT_LT(distinct.size(), keys.size() / 4);
}

TEST(Workloads, LookupBatchRespectsMissFractions) {
  KeySetConfig cfg;
  cfg.count = 10000;
  cfg.key_bits = 32;
  cfg.uniformity = 1.0;
  const auto keys = MakeKeySet(cfg);
  auto sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  LookupBatchConfig lcfg;
  lcfg.count = 20000;
  lcfg.miss_anywhere = 0.3;
  lcfg.miss_out_of_range = 0.1;
  const auto batch = MakeLookupBatch(keys, sorted, 32, lcfg);
  ASSERT_EQ(batch.size(), lcfg.count);
  std::size_t misses = 0;
  std::size_t out_of_range = 0;
  for (const auto v : batch) {
    if (!std::binary_search(sorted.begin(), sorted.end(), v)) ++misses;
    if (v > sorted.back()) ++out_of_range;
  }
  EXPECT_NEAR(static_cast<double>(misses) / 20000.0, 0.4, 0.03);
  EXPECT_NEAR(static_cast<double>(out_of_range) / 20000.0, 0.1, 0.02);
}

TEST(Workloads, ZipfLookupsSkewTowardsFewKeys) {
  KeySetConfig cfg;
  cfg.count = 10000;
  cfg.key_bits = 32;
  cfg.uniformity = 1.0;
  const auto keys = MakeKeySet(cfg);
  auto sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  LookupBatchConfig lcfg;
  lcfg.count = 50000;
  lcfg.zipf_theta = 1.5;
  const auto batch = MakeLookupBatch(keys, sorted, 32, lcfg);
  std::set<std::uint64_t> distinct(batch.begin(), batch.end());
  EXPECT_LT(distinct.size(), 5000u);  // Heavy reuse of popular keys.
}

TEST(Workloads, RangeQueriesCoverExactlyExpectedHits) {
  KeySetConfig cfg;
  cfg.count = 5000;
  cfg.key_bits = 32;
  cfg.uniformity = 0.5;
  auto keys = MakeKeySet(cfg);
  std::sort(keys.begin(), keys.end());
  for (const std::size_t hits : {1UL, 16UL, 256UL}) {
    const auto queries = MakeRangeQueries(keys, 100, hits, 1);
    for (const RangeQuery& q : queries) {
      const auto lo =
          std::lower_bound(keys.begin(), keys.end(), q.lo) - keys.begin();
      const auto hi =
          std::upper_bound(keys.begin(), keys.end(), q.hi) - keys.begin();
      EXPECT_EQ(static_cast<std::size_t>(hi - lo), hits);
    }
  }
}

TEST(Workloads, SplitIntoWavesPreservesAllKeys) {
  std::vector<std::uint64_t> keys(1003);
  std::iota(keys.begin(), keys.end(), 0);
  const auto waves = SplitIntoWaves(keys, 8);
  ASSERT_EQ(waves.size(), 8u);
  std::size_t total = 0;
  for (const auto& w : waves) total += w.size();
  EXPECT_EQ(total, keys.size());
}

// ---------------------------------------------------------------------
// TaskScheduler (work-stealing; the ThreadPool alias resolves here).
// ---------------------------------------------------------------------

TEST(TaskScheduler, CoversTheWholeRangeExactlyOnce) {
  TaskScheduler scheduler(4);
  std::vector<std::atomic<int>> hits(10000);
  scheduler.ParallelFor(0, hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TaskScheduler, HandlesEmptyAndTinyRanges) {
  TaskScheduler scheduler(4);
  int count = 0;
  scheduler.ParallelFor(5, 5, [&](std::size_t, std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  std::atomic<int> total{0};
  scheduler.ParallelFor(0, 1, [&](std::size_t b, std::size_t e) {
    total += static_cast<int>(e - b);
  });
  EXPECT_EQ(total.load(), 1);
}

// Concurrent callers run independent loops without trampling each
// other -- the serving layer (IndexService dispatcher + user threads)
// calls ParallelFor from several threads at once, and the TSan CI job
// watches this exact interaction.
TEST(TaskScheduler, ConcurrentCallersDontInterfere) {
  TaskScheduler scheduler(4);
  constexpr int kCallers = 4;
  constexpr int kRounds = 25;
  constexpr std::size_t kRange = 2000;
  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&scheduler, &failures] {
      for (int round = 0; round < kRounds; ++round) {
        std::vector<std::atomic<int>> hits(kRange);
        scheduler.ParallelFor(0, kRange, /*grain=*/64,
                              [&](std::size_t b, std::size_t e) {
                                for (std::size_t i = b; i < e; ++i) {
                                  hits[i].fetch_add(1);
                                }
                              });
        for (const auto& h : hits) {
          if (h.load() != 1) failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(TaskScheduler, SequentialCallsReuseWorkers) {
  TaskScheduler scheduler(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    scheduler.ParallelFor(0, 1000, [&](std::size_t b, std::size_t e) {
      std::size_t local = 0;
      for (std::size_t i = b; i < e; ++i) local += i;
      sum += local;
    });
    EXPECT_EQ(sum.load(), 1000u * 999u / 2u);
  }
}

// The reentrancy rule: a ParallelFor body may itself call ParallelFor
// on the same scheduler (sharded fan-out with parallel inner batches,
// BVH build inside a shard build). The old pool deadlocked or had to
// serialize here; the scheduler's blocked joiners steal-and-execute.
TEST(TaskScheduler, NestedParallelForIsReentrant) {
  TaskScheduler scheduler(4);
  constexpr std::size_t kOuter = 16;
  constexpr std::size_t kInner = 512;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  scheduler.ParallelFor(0, kOuter, 1, [&](std::size_t ob, std::size_t oe) {
    for (std::size_t o = ob; o < oe; ++o) {
      scheduler.ParallelFor(0, kInner, 64,
                            [&, o](std::size_t ib, std::size_t ie) {
                              for (std::size_t i = ib; i < ie; ++i) {
                                hits[o * kInner + i].fetch_add(1);
                              }
                            });
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// Three levels deep, through TaskGroup and ParallelFor mixed -- the
// shape of service wave -> sharded fan-out -> inner chunking.
TEST(TaskScheduler, DeepNestingAcrossGroupsAndLoops) {
  TaskScheduler scheduler(4);
  std::atomic<int> total{0};
  TaskGroup group(scheduler);
  for (int g = 0; g < 6; ++g) {
    group.Run([&scheduler, &total] {
      scheduler.ParallelFor(0, 8, 1, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          scheduler.ParallelFor(0, 100, 10,
                                [&total](std::size_t ib, std::size_t ie) {
                                  total.fetch_add(
                                      static_cast<int>(ie - ib));
                                });
        }
      });
    });
  }
  group.Wait();
  EXPECT_EQ(total.load(), 6 * 8 * 100);
}

// Steal correctness: tasks forked from worker threads land on the
// forker's own deque and must be stolen by everyone else; every task
// runs exactly once, none is lost or duplicated.
TEST(TaskScheduler, EveryForkedTaskRunsExactlyOnce) {
  TaskScheduler scheduler(4);
  constexpr std::size_t kTasks = 5000;
  std::vector<std::atomic<int>> runs(kTasks);
  TaskGroup group(scheduler);
  // Fork from the external thread and, transitively, from workers: the
  // first-level tasks fork the second level from inside the scheduler.
  for (std::size_t t = 0; t < kTasks / 10; ++t) {
    group.Run([&runs, &scheduler, t] {
      TaskGroup inner(scheduler);
      for (std::size_t j = 0; j < 10; ++j) {
        inner.Run([&runs, t, j] { runs[t * 10 + j].fetch_add(1); });
      }
      inner.Wait();
    });
  }
  group.Wait();
  for (const auto& r : runs) EXPECT_EQ(r.load(), 1);
}

TEST(TaskScheduler, ParallelForPropagatesExceptions) {
  TaskScheduler scheduler(4);
  std::atomic<int> executed{0};
  EXPECT_THROW(
      scheduler.ParallelFor(0, 10000, 1,
                            [&](std::size_t b, std::size_t) {
                              executed.fetch_add(1);
                              if (b == 4200) {
                                throw std::runtime_error("chunk failed");
                              }
                            }),
      std::runtime_error);
  // The abort flag stops unclaimed chunks; claimed ones still finish.
  EXPECT_LE(executed.load(), 10000);
  // The scheduler survives and keeps executing.
  std::atomic<int> after{0};
  scheduler.ParallelFor(0, 100, 10, [&](std::size_t b, std::size_t e) {
    after.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(after.load(), 100);
}

TEST(TaskScheduler, TaskGroupWaitRethrowsFirstException) {
  TaskScheduler scheduler(4);
  TaskGroup group(scheduler);
  std::atomic<int> completed{0};
  for (int t = 0; t < 32; ++t) {
    group.Run([&completed, t] {
      if (t == 7) throw std::logic_error("task 7 failed");
      completed.fetch_add(1);
    });
  }
  EXPECT_THROW(group.Wait(), std::logic_error);
  EXPECT_EQ(completed.load(), 31);
  // The group is reusable after a throwing Wait.
  group.Run([&completed] { completed.fetch_add(1); });
  group.Wait();
  EXPECT_EQ(completed.load(), 32);
}

// Fork/join determinism: a nested parallel computation writing to
// disjoint slots produces byte-identical results under any thread
// count, including serial execution -- the contract every batch entry
// point in the API layer builds on.
TEST(TaskScheduler, ForkJoinDeterminism) {
  constexpr std::size_t kOuter = 32;
  constexpr std::size_t kInner = 128;
  auto compute = [&](TaskScheduler& scheduler) {
    std::vector<std::uint64_t> out(kOuter * kInner);
    scheduler.ParallelFor(0, kOuter, 1, [&](std::size_t ob, std::size_t oe) {
      for (std::size_t o = ob; o < oe; ++o) {
        scheduler.ParallelFor(
            0, kInner, 16, [&, o](std::size_t ib, std::size_t ie) {
              for (std::size_t i = ib; i < ie; ++i) {
                out[o * kInner + i] = o * 1000003 + i * 97;
              }
            });
      }
    });
    return out;
  };
  TaskScheduler serial(1);
  TaskScheduler wide(4);
  EXPECT_EQ(compute(serial), compute(wide));
}

TEST(TaskScheduler, SerialScopeForcesInlineExecution) {
  TaskScheduler scheduler(4);
  TaskScheduler::SerialScope force_serial;
  ASSERT_TRUE(TaskScheduler::SerialForced());
  const std::thread::id caller = std::this_thread::get_id();
  scheduler.ParallelFor(0, 1000, 1, [&](std::size_t, std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  TaskGroup group(scheduler);
  group.Run([&] { EXPECT_EQ(std::this_thread::get_id(), caller); });
  group.Wait();
}

// Observability counters: every executed task is counted, and a
// blocked-parent workload on a multi-worker scheduler steals at least
// once (the /metrics scheduler gauges are built on these).
TEST(TaskScheduler, StatsCountTasksAndSteals) {
  TaskScheduler scheduler(4);
  EXPECT_EQ(scheduler.stats().num_threads, 4);
  const std::uint64_t executed_before = scheduler.stats().tasks_executed;

  constexpr int kTasks = 512;
  std::atomic<int> ran{0};
  // Fork the burst from *inside* a worker task: the children land on
  // that worker's own deque (external submissions go to the injection
  // queue instead, which is not a steal), so every other thread can
  // only get work by stealing it. The main thread spins on `forked`
  // instead of joining right away -- joining would let it pull the
  // parent out of the injection queue and run it itself, off any
  // worker deque.
  std::atomic<bool> forked{false};
  TaskGroup outer(scheduler);
  outer.Run([&scheduler, &ran, &forked] {
    TaskGroup inner(scheduler);
    for (int i = 0; i < kTasks; ++i) {
      inner.Run([&ran] {
        // Enough work per task that the forking worker cannot drain
        // its own deque before the others wake up and steal.
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    forked.store(true, std::memory_order_release);
    inner.Wait();
  });
  while (!forked.load(std::memory_order_acquire)) std::this_thread::yield();
  outer.Wait();
  EXPECT_EQ(ran.load(), kTasks);

  const TaskScheduler::Stats after = scheduler.stats();
  EXPECT_GE(after.tasks_executed - executed_before,
            static_cast<std::uint64_t>(kTasks));
  // All tasks were forked from one caller's deque; with four workers,
  // anything another worker ran had to be stolen.
  EXPECT_GT(after.steals, 0u);
}

// The historical name keeps working (and keeps its signature): the
// compatibility alias in thread_pool.h.
TEST(ThreadPool, AliasResolvesToTheScheduler) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(0, 100, [&](std::size_t b, std::size_t e) {
    total.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(total.load(), 100);
  EXPECT_EQ(pool.num_threads(), 2);
}

// ---------------------------------------------------------------------
// TablePrinter.
// ---------------------------------------------------------------------

TEST(TablePrinter, FormatsNumbersAndBytes) {
  EXPECT_EQ(TablePrinter::Num(12.3456, 2), "12.35");
  EXPECT_EQ(TablePrinter::Num(12.0, 2), "12");
  EXPECT_EQ(TablePrinter::Num(0.5, 3), "0.5");
  EXPECT_EQ(TablePrinter::Bytes(512), "512 B");
  EXPECT_EQ(TablePrinter::Bytes(2048), "2.00 KiB");
  EXPECT_EQ(TablePrinter::Bytes(3 * 1024 * 1024), "3.00 MiB");
}

TEST(TablePrinter, RendersAlignedRows) {
  TablePrinter table("demo");
  table.SetColumns({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"long-name", "2"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
}

}  // namespace
}  // namespace cgrx::util
