// Tests for the baseline indexes: SA (sorted array), B+ (GPU-style
// B+-tree), HT (open-addressing hash table), RTScan emulation and
// FullScan -- each validated against an oracle, plus structural
// invariants and update behaviour.
#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/baselines/btree.h"
#include "src/baselines/full_scan.h"
#include "src/baselines/hash_table.h"
#include "src/baselines/rtscan.h"
#include "src/baselines/sorted_array.h"
#include "src/util/rng.h"
#include "src/util/workloads.h"

namespace cgrx::baselines {
namespace {

// The B+ baseline is templated over the key width since the unified
// API refactor; these tests exercise the paper's 32-bit configuration.
using BPlusTree = ::cgrx::baselines::BPlusTree32;

using ::cgrx::core::KeyRange;
using ::cgrx::core::LookupResult;
using ::cgrx::util::KeyDistribution;
using ::cgrx::util::MakeDistributedKeySet;
using ::cgrx::util::Rng;

LookupResult OracleRange(const std::vector<std::uint64_t>& keys,
                         std::uint64_t lo, std::uint64_t hi) {
  LookupResult r;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (keys[i] >= lo && keys[i] <= hi) {
      r.Accumulate(static_cast<std::uint32_t>(i));
    }
  }
  return r;
}

// ---------------------------------------------------------------------
// SortedArray.
// ---------------------------------------------------------------------

TEST(SortedArrayTest, PointAndRangeMatchOracle) {
  const auto keys = MakeDistributedKeySet(KeyDistribution::kUniformity50,
                                          5000, 64, 80);
  SortedArray<std::uint64_t> sa;
  sa.Build(std::vector<std::uint64_t>(keys));
  Rng rng(81);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t k = i % 2 == 0 ? keys[rng.Below(keys.size())] : rng();
    ASSERT_EQ(sa.PointLookup(k), OracleRange(keys, k, k));
  }
  for (int i = 0; i < 300; ++i) {
    std::uint64_t lo = rng();
    std::uint64_t hi = rng();
    if (lo > hi) std::swap(lo, hi);
    ASSERT_EQ(sa.RangeLookup(lo, hi), OracleRange(keys, lo, hi));
  }
}

TEST(SortedArrayTest, DuplicatesAggregate) {
  SortedArray<std::uint32_t> sa;
  sa.Build({9, 9, 9, 5, 5, 1});
  EXPECT_EQ(sa.PointLookup(9).match_count, 3u);
  EXPECT_EQ(sa.PointLookup(5).match_count, 2u);
  EXPECT_EQ(sa.PointLookup(7).match_count, 0u);
}

TEST(SortedArrayTest, RebuildUpdates) {
  SortedArray<std::uint64_t> sa;
  sa.Build({10, 20, 30});
  sa.InsertBatch({15, 25}, {3, 4});
  EXPECT_EQ(sa.size(), 5u);
  EXPECT_EQ(sa.PointLookup(15).row_id_sum, 3u);
  sa.EraseBatch({20, 15});
  EXPECT_EQ(sa.size(), 3u);
  EXPECT_TRUE(sa.PointLookup(20).IsMiss());
}

TEST(SortedArrayTest, FootprintIsEntryBytes) {
  SortedArray<std::uint32_t> sa32;
  sa32.Build(std::vector<std::uint32_t>(1000, 1));
  EXPECT_EQ(sa32.MemoryFootprintBytes(), 1000u * 8u);
  SortedArray<std::uint64_t> sa64;
  sa64.Build(std::vector<std::uint64_t>(1000, 1));
  EXPECT_EQ(sa64.MemoryFootprintBytes(), 1000u * 12u);
}

// ---------------------------------------------------------------------
// BPlusTree.
// ---------------------------------------------------------------------

TEST(BPlusTreeTest, BulkLoadPointAndRangeMatchOracle) {
  const auto keys = MakeDistributedKeySet(KeyDistribution::kUniformity50,
                                          8000, 32, 82);
  std::vector<std::uint32_t> keys32(keys.begin(), keys.end());
  BPlusTree bt;
  bt.Build(std::vector<std::uint32_t>(keys32));
  std::string error;
  ASSERT_TRUE(bt.ValidateInvariants(&error)) << error;
  Rng rng(83);
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t k =
        i % 2 == 0 ? keys[rng.Below(keys.size())] : (rng() & 0xffffffff);
    ASSERT_EQ(bt.PointLookup(static_cast<std::uint32_t>(k)),
              OracleRange(keys, k, k))
        << k;
  }
  for (int i = 0; i < 300; ++i) {
    std::uint32_t lo = static_cast<std::uint32_t>(rng());
    std::uint32_t hi = static_cast<std::uint32_t>(rng());
    if (lo > hi) std::swap(lo, hi);
    ASSERT_EQ(bt.RangeLookup(lo, hi), OracleRange(keys, lo, hi));
  }
}

TEST(BPlusTreeTest, InsertionsSplitCorrectly) {
  BPlusTree bt;
  bt.Build(std::vector<std::uint32_t>{});
  // Insert a permuted sequence one batch at a time, forcing repeated
  // leaf and inner splits across several levels.
  std::vector<std::uint32_t> keys;
  for (std::uint32_t i = 0; i < 20000; ++i) keys.push_back(i * 7919 % 65536);
  std::vector<std::uint32_t> rows(keys.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    rows[i] = static_cast<std::uint32_t>(i);
  }
  bt.InsertBatch(keys, rows);
  EXPECT_EQ(bt.size(), keys.size());
  EXPECT_GE(bt.height(), 3);
  std::string error;
  ASSERT_TRUE(bt.ValidateInvariants(&error)) << error;
  std::vector<std::uint64_t> keys64(keys.begin(), keys.end());
  Rng rng(84);
  for (int i = 0; i < 2000; ++i) {
    const std::uint32_t k = static_cast<std::uint32_t>(rng.Below(70000));
    ASSERT_EQ(bt.PointLookup(k), OracleRange(keys64, k, k)) << k;
  }
}

TEST(BPlusTreeTest, DuplicatesSpanningLeaves) {
  std::vector<std::uint32_t> keys(500, 42);  // 500 duplicates.
  keys.push_back(41);
  keys.push_back(43);
  BPlusTree bt;
  bt.Build(std::vector<std::uint32_t>(keys));
  EXPECT_EQ(bt.PointLookup(42).match_count, 500u);
  EXPECT_EQ(bt.PointLookup(41).match_count, 1u);
  EXPECT_EQ(bt.PointLookup(43).match_count, 1u);
  EXPECT_EQ(bt.RangeLookup(41, 43).match_count, 502u);
}

TEST(BPlusTreeTest, LazyDeletions) {
  std::vector<std::uint32_t> keys;
  for (std::uint32_t i = 0; i < 5000; ++i) keys.push_back(i);
  BPlusTree bt;
  bt.Build(std::vector<std::uint32_t>(keys));
  std::vector<std::uint32_t> dels;
  for (std::uint32_t i = 0; i < 5000; i += 2) dels.push_back(i);
  bt.EraseBatch(dels);
  EXPECT_EQ(bt.size(), 2500u);
  std::string error;
  ASSERT_TRUE(bt.ValidateInvariants(&error)) << error;
  for (std::uint32_t i = 0; i < 5000; ++i) {
    ASSERT_EQ(bt.PointLookup(i).match_count, i % 2 == 1 ? 1u : 0u) << i;
  }
  // Ranges skip emptied leaves.
  EXPECT_EQ(bt.RangeLookup(0, 99).match_count, 50u);
}

TEST(BPlusTreeTest, MixedUpdateStormMatchesOracle) {
  BPlusTree bt;
  std::multimap<std::uint32_t, std::uint32_t> oracle;
  std::vector<std::uint32_t> initial;
  for (std::uint32_t i = 0; i < 3000; ++i) initial.push_back(i * 3);
  bt.Build(std::vector<std::uint32_t>(initial));
  for (std::size_t i = 0; i < initial.size(); ++i) {
    oracle.emplace(initial[i], static_cast<std::uint32_t>(i));
  }
  Rng rng(85);
  for (int wave = 0; wave < 6; ++wave) {
    std::vector<std::uint32_t> ins;
    std::vector<std::uint32_t> rows;
    for (int i = 0; i < 400; ++i) {
      ins.push_back(static_cast<std::uint32_t>(rng.Below(20000)));
      rows.push_back(static_cast<std::uint32_t>(10000 + i));
    }
    bt.InsertBatch(ins, rows);
    for (std::size_t i = 0; i < ins.size(); ++i) {
      oracle.emplace(ins[i], rows[i]);
    }
    std::vector<std::uint32_t> dels;
    for (int i = 0; i < 200; ++i) {
      dels.push_back(static_cast<std::uint32_t>(rng.Below(20000)));
    }
    bt.EraseBatch(dels);
    for (const auto d : dels) {
      auto it = oracle.find(d);
      if (it != oracle.end()) oracle.erase(it);
    }
    ASSERT_EQ(bt.size(), oracle.size());
    std::string error;
    ASSERT_TRUE(bt.ValidateInvariants(&error)) << error;
    for (int q = 0; q < 500; ++q) {
      const std::uint32_t k = static_cast<std::uint32_t>(rng.Below(20000));
      LookupResult expected;
      for (auto [it, end] = oracle.equal_range(k); it != end; ++it) {
        expected.Accumulate(it->second);
      }
      ASSERT_EQ(bt.PointLookup(k), expected) << "wave " << wave << " " << k;
    }
  }
}

TEST(BPlusTreeTest, NodesAre128Bytes) {
  EXPECT_LE(sizeof(std::uint16_t) + sizeof(std::uint32_t) +
                BPlusTree::kLeafCapacity * 8,
            BPlusTree::kNodeBytes);
  BPlusTree bt;
  std::vector<std::uint32_t> keys(1000);
  for (std::uint32_t i = 0; i < 1000; ++i) keys[i] = i;
  bt.Build(std::move(keys));
  EXPECT_GT(bt.MemoryFootprintBytes(), 1000u * 8u);
}

// ---------------------------------------------------------------------
// HashTable.
// ---------------------------------------------------------------------

TEST(HashTableTest, PointLookupsMatchOracle) {
  const auto keys = MakeDistributedKeySet(KeyDistribution::kUniform, 5000,
                                          64, 86);
  HashTable<std::uint64_t> ht;
  ht.Build(std::vector<std::uint64_t>(keys));
  EXPECT_LE(ht.load_factor(), 0.8);
  Rng rng(87);
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t k = i % 2 == 0 ? keys[rng.Below(keys.size())] : rng();
    ASSERT_EQ(ht.PointLookup(k), OracleRange(keys, k, k));
  }
}

TEST(HashTableTest, DuplicatesOccupySeparateSlots) {
  HashTable<std::uint32_t> ht;
  ht.Build({5, 5, 5, 9});
  const auto r = ht.PointLookup(5);
  EXPECT_EQ(r.match_count, 3u);
  EXPECT_EQ(r.row_id_sum, 0u + 1u + 2u);
}

TEST(HashTableTest, TombstoneDeletesAndReuse) {
  HashTable<std::uint64_t> ht;
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 1000; ++i) keys.push_back(i);
  ht.Build(std::vector<std::uint64_t>(keys));
  std::vector<std::uint64_t> dels;
  for (std::uint64_t i = 0; i < 1000; i += 3) dels.push_back(i);
  ht.EraseBatch(dels);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(ht.PointLookup(i).match_count, i % 3 == 0 ? 0u : 1u) << i;
  }
  // Reinsert over tombstones.
  ht.InsertBatch({0, 3, 6}, {100, 101, 102});
  EXPECT_EQ(ht.PointLookup(0).row_id_sum, 100u);
  EXPECT_EQ(ht.PointLookup(3).row_id_sum, 101u);
}

TEST(HashTableTest, GrowsWhenLoadFactorExceeded) {
  HashTable<std::uint64_t> ht(0.8);
  ht.Build(std::vector<std::uint64_t>{1, 2, 3});
  const std::size_t before = ht.capacity();
  std::vector<std::uint64_t> ins;
  std::vector<std::uint32_t> rows;
  for (std::uint64_t i = 10; i < 5000; ++i) {
    ins.push_back(i);
    rows.push_back(static_cast<std::uint32_t>(i));
  }
  ht.InsertBatch(ins, rows);
  EXPECT_GT(ht.capacity(), before);
  EXPECT_LE(ht.load_factor(), 0.8);
  for (std::uint64_t i = 10; i < 5000; i += 97) {
    ASSERT_EQ(ht.PointLookup(i).match_count, 1u);
  }
}

TEST(HashTableTest, UpdateLoadFactorConfig) {
  HashTable<std::uint64_t> ht(0.4);  // The paper's update configuration.
  std::vector<std::uint64_t> keys(4000);
  for (std::uint64_t i = 0; i < 4000; ++i) keys[i] = i * 17;
  ht.Build(std::move(keys));
  EXPECT_LE(ht.load_factor(), 0.4);
}

// ---------------------------------------------------------------------
// RtScan.
// ---------------------------------------------------------------------

TEST(RtScanTest, RangeLookupsMatchOracle) {
  const auto keys = MakeDistributedKeySet(KeyDistribution::kDense, 4000, 32,
                                          88);
  std::vector<std::uint32_t> keys32(keys.begin(), keys.end());
  RtScan<std::uint32_t> scan;
  scan.Build(std::vector<std::uint32_t>(keys32));
  Rng rng(89);
  for (int i = 0; i < 200; ++i) {
    std::uint32_t lo = static_cast<std::uint32_t>(rng.Below(4200));
    std::uint32_t hi = lo + static_cast<std::uint32_t>(rng.Below(500));
    ASSERT_EQ(scan.RangeLookup(lo, hi), OracleRange(keys, lo, hi))
        << "[" << lo << ", " << hi << "]";
  }
}

TEST(RtScanTest, BatchedRangeLookupsMatchScalar) {
  const auto keys = MakeDistributedKeySet(KeyDistribution::kDense, 3000, 32,
                                          90);
  std::vector<std::uint32_t> keys32(keys.begin(), keys.end());
  RtScan<std::uint32_t> scan;
  scan.Build(std::vector<std::uint32_t>(keys32));
  std::vector<KeyRange<std::uint32_t>> ranges;
  Rng rng(91);
  for (int i = 0; i < 100; ++i) {
    const std::uint32_t lo = static_cast<std::uint32_t>(rng.Below(3000));
    ranges.push_back({lo, lo + static_cast<std::uint32_t>(rng.Below(200))});
  }
  std::vector<LookupResult> results(ranges.size());
  scan.RangeLookupBatch(ranges.data(), ranges.size(), results.data());
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    ASSERT_EQ(results[i], scan.RangeLookup(ranges[i].lo, ranges[i].hi));
  }
}

// ---------------------------------------------------------------------
// FullScan.
// ---------------------------------------------------------------------

TEST(FullScanTest, MatchesOracleEverywhere) {
  const auto keys = MakeDistributedKeySet(KeyDistribution::kUniformity50,
                                          2000, 64, 92);
  FullScan<std::uint64_t> fs;
  fs.Build(std::vector<std::uint64_t>(keys));
  Rng rng(93);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t k = i % 2 == 0 ? keys[rng.Below(keys.size())] : rng();
    ASSERT_EQ(fs.PointLookup(k), OracleRange(keys, k, k));
  }
  for (int i = 0; i < 100; ++i) {
    std::uint64_t lo = rng();
    std::uint64_t hi = rng();
    if (lo > hi) std::swap(lo, hi);
    ASSERT_EQ(fs.RangeLookup(lo, hi), OracleRange(keys, lo, hi));
  }
}

}  // namespace
}  // namespace cgrx::baselines
