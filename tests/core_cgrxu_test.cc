// Tests for cgRXu, the node-based updatable variant (paper Section IV):
// bulk load semantics, chain lookups, batch insert/delete with node
// splits, insert+delete elimination, the overflow bucket, and
// randomized update storms validated against a std::multimap oracle
// plus structural invariants.
#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/cgrxu_index.h"
#include "src/util/rng.h"
#include "src/util/workloads.h"

namespace cgrx::core {
namespace {

using ::cgrx::util::KeyDistribution;
using ::cgrx::util::MakeDistributedKeySet;
using ::cgrx::util::Rng;

/// Multimap oracle mirroring the index contents.
class UOracle {
 public:
  void Insert(std::uint64_t key, std::uint32_t row) {
    entries_.emplace(key, row);
  }

  bool EraseOne(std::uint64_t key) {
    auto it = entries_.find(key);
    if (it == entries_.end()) return false;
    entries_.erase(it);
    return true;
  }

  LookupResult Range(std::uint64_t lo, std::uint64_t hi) const {
    LookupResult r;
    for (auto it = entries_.lower_bound(lo);
         it != entries_.end() && it->first <= hi; ++it) {
      r.Accumulate(it->second);
    }
    return r;
  }

  LookupResult Point(std::uint64_t key) const { return Range(key, key); }
  std::size_t size() const { return entries_.size(); }

 private:
  std::multimap<std::uint64_t, std::uint32_t> entries_;
};

TEST(CgrxuBuild, NodeCapacityFollowsConfiguredNodeBytes) {
  CgrxuConfig one_cl;
  one_cl.node_bytes = 128;
  CgrxuIndex32 a(one_cl);
  // 128B - (4B maxKey + 4B next + 2B size) = 118B / 8B per entry = 14.
  EXPECT_EQ(a.node_capacity(), 14u);

  CgrxuConfig half_cl;
  half_cl.node_bytes = 64;
  CgrxuIndex32 b(half_cl);
  EXPECT_EQ(b.node_capacity(), 6u);

  CgrxuIndex64 c(one_cl);
  // 128B - (8 + 4 + 2) = 114B / 12B = 9.
  EXPECT_EQ(c.node_capacity(), 9u);
}

TEST(CgrxuBuild, BulkLoadFillsNodesToConfiguredFraction) {
  const auto keys = MakeDistributedKeySet(KeyDistribution::kUniform, 10000,
                                          64, 40);
  CgrxuIndex64 index;
  index.Build(std::vector<std::uint64_t>(keys));
  EXPECT_EQ(index.size(), keys.size());
  // Buckets hold floor(capacity * initial_fill) keys each; the key set
  // is duplicate-free, so the bucket count is exact.
  const std::size_t bucket_keys = static_cast<std::size_t>(
      static_cast<double>(index.node_capacity()) * 0.5);
  EXPECT_EQ(index.num_buckets(),
            (keys.size() + bucket_keys - 1) / bucket_keys);
  std::string error;
  EXPECT_TRUE(index.ValidateInvariants(&error)) << error;
}

TEST(CgrxuLookup, FindsEveryBulkLoadedKey) {
  const auto keys = MakeDistributedKeySet(KeyDistribution::kUniformity50,
                                          8000, 64, 41);
  UOracle oracle;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    oracle.Insert(keys[i], static_cast<std::uint32_t>(i));
  }
  CgrxuIndex64 index;
  index.Build(std::vector<std::uint64_t>(keys));
  Rng rng(42);
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t k = i % 2 == 0 ? keys[rng.Below(keys.size())] : rng();
    ASSERT_EQ(index.PointLookup(k), oracle.Point(k)) << k;
  }
}

TEST(CgrxuLookup, RangeLookupsMatchOracle) {
  const auto keys = MakeDistributedKeySet(KeyDistribution::kClustered16,
                                          6000, 64, 43);
  UOracle oracle;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    oracle.Insert(keys[i], static_cast<std::uint32_t>(i));
  }
  CgrxuIndex64 index;
  index.Build(std::vector<std::uint64_t>(keys));
  auto sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  Rng rng(44);
  for (int i = 0; i < 500; ++i) {
    const std::size_t a = rng.Below(sorted.size());
    const std::size_t b =
        std::min(sorted.size() - 1, a + rng.Below(500));
    ASSERT_EQ(index.RangeLookup(sorted[a], sorted[b]),
              oracle.Range(sorted[a], sorted[b]));
  }
}

TEST(CgrxuUpdates, InsertsBeyondMaxKeyGoToOverflowBucket) {
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 1000; ++i) keys.push_back(i);
  CgrxuIndex64 index;
  index.Build(std::vector<std::uint64_t>(keys));
  // Keys far above the bulk-loaded maximum.
  std::vector<std::uint64_t> big = {5000, 6000, 1ULL << 40, ~0ULL};
  std::vector<std::uint32_t> rows = {1, 2, 3, 4};
  index.InsertBatch(big, rows);
  for (std::size_t i = 0; i < big.size(); ++i) {
    const auto r = index.PointLookup(big[i]);
    ASSERT_EQ(r.match_count, 1u) << big[i];
    EXPECT_EQ(r.row_id_sum, rows[i]);
  }
  // Range spanning into the overflow bucket.
  EXPECT_EQ(index.RangeLookup(900, 6000).match_count, 100u + 2u);
  std::string error;
  EXPECT_TRUE(index.ValidateInvariants(&error)) << error;
}

TEST(CgrxuUpdates, SplitsPreserveOrderAndFindability) {
  // Small nodes force frequent splits.
  CgrxuConfig config;
  config.node_bytes = 64;
  CgrxuIndex64 index(config);
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 500; ++i) keys.push_back(i * 10);
  index.Build(std::vector<std::uint64_t>(keys));
  // Insert between every existing pair: each bucket overflows multiple
  // times.
  std::vector<std::uint64_t> extra;
  std::vector<std::uint32_t> rows;
  for (std::uint64_t i = 0; i < 500; ++i) {
    for (std::uint64_t d = 1; d <= 4; ++d) {
      extra.push_back(i * 10 + d);
      rows.push_back(static_cast<std::uint32_t>(extra.size()));
    }
  }
  index.InsertBatch(extra, rows);
  EXPECT_EQ(index.size(), 500u + extra.size());
  std::string error;
  ASSERT_TRUE(index.ValidateInvariants(&error)) << error;
  for (std::size_t i = 0; i < extra.size(); i += 13) {
    ASSERT_EQ(index.PointLookup(extra[i]).match_count, 1u) << extra[i];
  }
  EXPECT_GT(index.used_nodes(), index.num_buckets() + 1);
}

TEST(CgrxuUpdates, DeletionsShrinkAndKeepRouting) {
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 2000; ++i) keys.push_back(i);
  CgrxuIndex64 index;
  index.Build(std::vector<std::uint64_t>(keys));
  // Delete every even key.
  std::vector<std::uint64_t> dels;
  for (std::uint64_t i = 0; i < 2000; i += 2) dels.push_back(i);
  index.EraseBatch(dels);
  EXPECT_EQ(index.size(), 1000u);
  for (std::uint64_t i = 0; i < 2000; ++i) {
    ASSERT_EQ(index.PointLookup(i).match_count, i % 2 == 1 ? 1u : 0u) << i;
  }
  std::string error;
  EXPECT_TRUE(index.ValidateInvariants(&error)) << error;
}

TEST(CgrxuUpdates, InsertDeleteInSameBatchEliminates) {
  std::vector<std::uint64_t> keys = {10, 20, 30, 40};
  CgrxuIndex64 index;
  index.Build(std::vector<std::uint64_t>(keys));
  // 25 is inserted and deleted in the same batch: net no-op. 20 is
  // deleted; 35 inserted.
  index.UpdateBatch({25, 35}, {100, 101}, {25, 20});
  EXPECT_EQ(index.size(), 4u);
  EXPECT_TRUE(index.PointLookup(25).IsMiss());
  EXPECT_TRUE(index.PointLookup(20).IsMiss());
  EXPECT_EQ(index.PointLookup(35).match_count, 1u);
  EXPECT_EQ(index.PointLookup(10).match_count, 1u);
}

TEST(CgrxuUpdates, DeletingAbsentKeysIsANoOp) {
  std::vector<std::uint64_t> keys = {1, 2, 3};
  CgrxuIndex64 index;
  index.Build(std::vector<std::uint64_t>(keys));
  index.EraseBatch({0, 4, 100, 2});
  EXPECT_EQ(index.size(), 2u);
  EXPECT_TRUE(index.PointLookup(2).IsMiss());
  EXPECT_EQ(index.PointLookup(1).match_count, 1u);
}

TEST(CgrxuUpdates, DuplicateInsertsAccumulate) {
  CgrxuIndex64 index;
  index.Build(std::vector<std::uint64_t>{100, 200});
  index.InsertBatch({150, 150, 150}, {1, 2, 3});
  const auto r = index.PointLookup(150);
  EXPECT_EQ(r.match_count, 3u);
  EXPECT_EQ(r.row_id_sum, 6u);
  // Delete removes one instance at a time.
  index.EraseBatch({150});
  EXPECT_EQ(index.PointLookup(150).match_count, 2u);
}

TEST(CgrxuUpdates, EmptyBulkLoadActsAsPureOverflow) {
  CgrxuIndex64 index;
  index.Build(std::vector<std::uint64_t>{});
  EXPECT_TRUE(index.PointLookup(1).IsMiss());
  index.InsertBatch({7, 3, 9}, {0, 1, 2});
  EXPECT_EQ(index.size(), 3u);
  EXPECT_EQ(index.PointLookup(7).match_count, 1u);
  EXPECT_EQ(index.RangeLookup(0, 100).match_count, 3u);
  std::string error;
  EXPECT_TRUE(index.ValidateInvariants(&error)) << error;
}

struct StormCase {
  int key_bits;
  std::uint32_t node_bytes;
};

class CgrxuStormTest : public ::testing::TestWithParam<StormCase> {};

TEST_P(CgrxuStormTest, RandomUpdateStormMatchesOracle) {
  const auto [key_bits, node_bytes] = GetParam();
  const std::uint64_t space =
      key_bits == 64 ? ~0ULL : ((1ULL << key_bits) - 1);
  const auto keys64 = MakeDistributedKeySet(KeyDistribution::kUniformity50,
                                            4000, key_bits, 50);
  UOracle oracle;
  for (std::size_t i = 0; i < keys64.size(); ++i) {
    oracle.Insert(keys64[i], static_cast<std::uint32_t>(i));
  }
  CgrxuConfig config;
  config.node_bytes = node_bytes;
  CgrxuIndex64 index(config);
  index.Build(std::vector<std::uint64_t>(keys64));

  Rng rng(51);
  std::vector<std::uint64_t> live(keys64);
  // The storm keeps keys distinct: "delete one instance of a duplicate"
  // is ambiguous between the index and the multimap oracle (they may
  // legitimately pick different rowIDs). Duplicate semantics are
  // covered by the dedicated duplicate tests.
  std::unordered_set<std::uint64_t> used(keys64.begin(), keys64.end());
  std::uint32_t next_row = 4000;
  for (int wave = 0; wave < 8; ++wave) {
    // Build a mixed batch: ~300 inserts (some near existing keys, some
    // far), ~200 deletes of live keys, ~50 deletes of absent keys.
    std::vector<std::uint64_t> ins;
    std::vector<std::uint32_t> ins_rows;
    std::vector<std::uint64_t> del;
    for (int i = 0; i < 300; ++i) {
      std::uint64_t k = i % 3 == 0 ? live[rng.Below(live.size())] + 1
                                   : rng.Between(0, space);
      int attempts = 0;
      while (!used.insert(k).second && attempts++ < 16) {
        k = rng.Between(0, space);
      }
      if (attempts > 16) continue;
      ins.push_back(k);
      ins_rows.push_back(next_row++);
    }
    for (int i = 0; i < 200 && !live.empty(); ++i) {
      const std::size_t pos = rng.Below(live.size());
      del.push_back(live[pos]);
      live[pos] = live.back();
      live.pop_back();
    }
    for (int i = 0; i < 50; ++i) del.push_back(rng.Between(0, space));

    // Mirror into the oracle with the same elimination semantics.
    {
      auto ins_copy = ins;
      auto rows_copy = ins_rows;
      auto del_copy = del;
      std::vector<std::size_t> order(ins_copy.size());
      // Sort pairs by key (stable) to mirror the index.
      std::vector<std::pair<std::uint64_t, std::uint32_t>> pairs;
      for (std::size_t i = 0; i < ins_copy.size(); ++i) {
        pairs.emplace_back(ins_copy[i], rows_copy[i]);
      }
      std::stable_sort(pairs.begin(), pairs.end(),
                       [](const auto& a, const auto& b) {
                         return a.first < b.first;
                       });
      std::sort(del_copy.begin(), del_copy.end());
      std::vector<std::pair<std::uint64_t, std::uint32_t>> ins_final;
      std::vector<std::uint64_t> del_final;
      std::size_t i = 0;
      std::size_t j = 0;
      while (i < pairs.size() && j < del_copy.size()) {
        if (pairs[i].first < del_copy[j]) {
          ins_final.push_back(pairs[i++]);
        } else if (del_copy[j] < pairs[i].first) {
          del_final.push_back(del_copy[j++]);
        } else {
          ++i;
          ++j;
        }
      }
      for (; i < pairs.size(); ++i) ins_final.push_back(pairs[i]);
      for (; j < del_copy.size(); ++j) del_final.push_back(del_copy[j]);
      for (const auto& [k, r] : ins_final) {
        oracle.Insert(k, r);
        live.push_back(k);
      }
      for (const auto k : del_final) oracle.EraseOne(k);
      (void)order;
    }

    index.UpdateBatch(ins, ins_rows, del);
    ASSERT_EQ(index.size(), oracle.size()) << "wave " << wave;
    std::string error;
    ASSERT_TRUE(index.ValidateInvariants(&error))
        << "wave " << wave << ": " << error;
    // Spot-check lookups.
    for (int q = 0; q < 600; ++q) {
      const std::uint64_t k =
          q % 2 == 0 && !live.empty() ? live[rng.Below(live.size())]
                                      : rng.Between(0, space);
      ASSERT_EQ(index.PointLookup(k), oracle.Point(k))
          << "wave " << wave << " key " << k;
    }
    for (int q = 0; q < 60; ++q) {
      std::uint64_t lo = rng.Between(0, space);
      std::uint64_t hi = rng.Between(0, space);
      if (lo > hi) std::swap(lo, hi);
      // Bound range width to keep the oracle cheap.
      hi = std::min(hi, lo + space / 64);
      ASSERT_EQ(index.RangeLookup(lo, hi), oracle.Range(lo, hi))
          << "wave " << wave;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Storms, CgrxuStormTest,
    ::testing::Values(StormCase{64, 128}, StormCase{64, 64},
                      StormCase{32, 128}, StormCase{32, 64}),
    [](const auto& info) {
      std::string name = "u";
      name += std::to_string(info.param.key_bits);
      name += 'n';
      name += std::to_string(info.param.node_bytes);
      return name;
    });

TEST(CgrxuMemory, FootprintCountsAllocatedNodes) {
  const auto keys = MakeDistributedKeySet(KeyDistribution::kUniform, 5000,
                                          64, 60);
  CgrxuIndex64 index;
  index.Build(std::vector<std::uint64_t>(keys));
  const std::size_t before = index.MemoryFootprintBytes();
  // Heavy insertion causes splits and slab growth.
  std::vector<std::uint64_t> ins;
  std::vector<std::uint32_t> rows;
  Rng rng(61);
  for (int i = 0; i < 20000; ++i) {
    ins.push_back(rng());
    rows.push_back(static_cast<std::uint32_t>(i));
  }
  index.InsertBatch(ins, rows);
  EXPECT_GT(index.MemoryFootprintBytes(), before);
  std::string error;
  EXPECT_TRUE(index.ValidateInvariants(&error)) << error;
}

TEST(CgrxuLookup, LookupCostDoesNotExplodeAfterUpdates) {
  // The cgRXu design goal: updates must not degrade the ray path. The
  // ray count per lookup stays bounded by 5 regardless of update load.
  const auto keys = MakeDistributedKeySet(KeyDistribution::kUniform, 4000,
                                          64, 62);
  CgrxuIndex64 index;
  index.Build(std::vector<std::uint64_t>(keys));
  Rng rng(63);
  for (int wave = 0; wave < 4; ++wave) {
    std::vector<std::uint64_t> ins;
    std::vector<std::uint32_t> rows;
    for (int i = 0; i < 2000; ++i) {
      ins.push_back(rng());
      rows.push_back(static_cast<std::uint32_t>(i));
    }
    index.InsertBatch(ins, rows);
  }
  for (int i = 0; i < 2000; ++i) {
    int rays = 0;
    index.PointLookup(rng(), &rays);
    ASSERT_LE(rays, 5);
  }
}

}  // namespace
}  // namespace cgrx::core
