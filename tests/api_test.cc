// Conformance suite for the unified public API (src/api): every
// factory-registered backend, at both key widths, must build, look up,
// insert and erase consistently with a multimap oracle -- gated on the
// capabilities it reports -- and parallel batch execution must produce
// byte-identical results to serial execution. Also covers the factory
// registry itself, the width-erased AnyIndex handle and the IndexStats
// counters.
#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/adapters.h"
#include "src/api/any_index.h"
#include "src/api/factory.h"
#include "src/api/index.h"
#include "src/core/cgrx_index.h"
#include "src/util/rng.h"

namespace cgrx::api {
namespace {

using ::cgrx::core::KeyRange;
using ::cgrx::core::LookupResult;
using ::cgrx::util::Rng;

constexpr const char* kAllBackends[] = {"cgrx", "cgrxu",    "rx",
                                        "sa",   "btree",    "ht",
                                        "fullscan", "rtscan"};

/// Shuffled key set with duplicates, bounded to `key_bits`.
std::vector<std::uint64_t> MakeKeys(int key_bits, std::size_t count,
                                    std::uint64_t seed) {
  Rng rng(seed);
  const std::uint64_t bound =
      key_bits == 32 ? 0xffffffffULL : 0x00ffffffffffffffULL;
  std::vector<std::uint64_t> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (i % 8 == 7 && !keys.empty()) {
      keys.push_back(keys[rng.Below(keys.size())]);  // Duplicate.
    } else {
      keys.push_back(rng.Below(bound));
    }
  }
  return keys;
}

/// Order-independent aggregate the indexes must reproduce.
LookupResult OracleRange(const std::multimap<std::uint64_t, std::uint32_t>&
                             oracle,
                         std::uint64_t lo, std::uint64_t hi) {
  LookupResult expected;
  for (auto it = oracle.lower_bound(lo);
       it != oracle.end() && it->first <= hi; ++it) {
    expected.Accumulate(it->second);
  }
  return expected;
}

struct ApiTestParam {
  std::string backend;
  int key_bits;
};

std::string ParamName(const ::testing::TestParamInfo<ApiTestParam>& info) {
  return info.param.backend + "_" + std::to_string(info.param.key_bits);
}

std::vector<ApiTestParam> AllParams() {
  std::vector<ApiTestParam> params;
  for (const char* backend : kAllBackends) {
    params.push_back({backend, 32});
    params.push_back({backend, 64});
  }
  return params;
}

class ApiConformanceTest : public ::testing::TestWithParam<ApiTestParam> {
 protected:
  AnyIndex Make() const {
    return MakeAnyIndex(GetParam().backend, GetParam().key_bits);
  }
};

INSTANTIATE_TEST_SUITE_P(AllBackends, ApiConformanceTest,
                         ::testing::ValuesIn(AllParams()), ParamName);

// ---------------------------------------------------------------------
// Factory registry.
// ---------------------------------------------------------------------

TEST(IndexFactoryTest, AllEightCompetitorsRegisteredAtBothWidths) {
  const auto names32 = IndexFactory<std::uint32_t>::Global().Names();
  const auto names64 = IndexFactory<std::uint64_t>::Global().Names();
  for (const char* backend : kAllBackends) {
    EXPECT_TRUE(std::count(names32.begin(), names32.end(), backend))
        << backend << " missing from the 32-bit registry";
    EXPECT_TRUE(std::count(names64.begin(), names64.end(), backend))
        << backend << " missing from the 64-bit registry";
  }
}

TEST(IndexFactoryTest, UnknownBackendThrows) {
  EXPECT_THROW(MakeIndex<std::uint64_t>("no-such-index"),
               std::invalid_argument);
  EXPECT_FALSE(IndexFactory<std::uint64_t>::Global().Contains("nope"));
}

TEST(IndexFactoryTest, UnknownBackendErrorListsRegisteredNames) {
  try {
    MakeIndex<std::uint64_t>("no-such-index");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("no-such-index"), std::string::npos) << message;
    for (const char* backend : kAllBackends) {
      EXPECT_NE(message.find(backend), std::string::npos)
          << backend << " missing from: " << message;
    }
    EXPECT_NE(message.find("sharded:"), std::string::npos) << message;
  }
}

TEST(IndexFactoryTest, RegisteredNamesIsSortedAndMatchesNames) {
  const auto& factory = IndexFactory<std::uint64_t>::Global();
  const auto registered = factory.RegisteredNames();
  EXPECT_TRUE(std::is_sorted(registered.begin(), registered.end()));
  EXPECT_EQ(registered, factory.Names());
  for (const char* backend : kAllBackends) {
    EXPECT_TRUE(std::count(registered.begin(), registered.end(), backend));
  }
}

TEST(IndexFactoryTest, OptionsReachTheBackend) {
  IndexOptions options;
  options.bucket_size = 256;
  const auto index = MakeIndex<std::uint64_t>("cgrx", options);
  auto* adapter =
      dynamic_cast<IndexAdapter<core::CgrxIndex64>*>(index.get());
  ASSERT_NE(adapter, nullptr);
  EXPECT_EQ(adapter->impl().config().bucket_size, 256u);
}

TEST(IndexFactoryTest, RuntimeRegistrationAndDuplicateRejection) {
  auto& factory = IndexFactory<std::uint64_t>::Global();
  const auto creator = [](const IndexOptions& options) {
    return MakeIndex<std::uint64_t>("sa", options);
  };
  EXPECT_FALSE(factory.Register("cgrx", creator));  // Name taken.
  EXPECT_THROW(factory.Register("null-creator", nullptr),
               std::invalid_argument);
  EXPECT_FALSE(factory.Contains("null-creator"));

  // New backends can alias onto existing creators at runtime.
  ASSERT_TRUE(factory.Register("sa-alias", creator));
  const auto index = MakeIndex<std::uint64_t>("sa-alias");
  index->Build({3, 1, 2});
  EXPECT_EQ(index->size(), 3u);
}

// ---------------------------------------------------------------------
// Capability-gated conformance against a multimap oracle.
// ---------------------------------------------------------------------

TEST_P(ApiConformanceTest, BuildLookupUpdateEraseMatchOracle) {
  AnyIndex index = Make();
  const auto keys = MakeKeys(GetParam().key_bits, 1500, 101);
  std::multimap<std::uint64_t, std::uint32_t> oracle;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    oracle.emplace(keys[i], static_cast<std::uint32_t>(i));
  }
  index.Build(keys);
  EXPECT_EQ(index.size(), keys.size());

  const Capabilities caps = index.capabilities();
  Rng rng(202);
  auto check_lookups = [&](const std::string& phase) {
    if (caps.point_lookup) {
      std::vector<std::uint64_t> probes;
      for (int i = 0; i < 300; ++i) {
        probes.push_back(i % 2 == 0 ? keys[rng.Below(keys.size())]
                                    : rng.Below(1ULL << 32));
      }
      std::vector<LookupResult> results;
      index.PointLookupBatch(probes, &results);
      ASSERT_EQ(results.size(), probes.size());
      for (std::size_t i = 0; i < probes.size(); ++i) {
        ASSERT_EQ(results[i], OracleRange(oracle, probes[i], probes[i]))
            << phase << " point lookup of " << probes[i];
      }
    }
    if (caps.range_lookup) {
      std::vector<KeyRange<std::uint64_t>> ranges;
      for (int i = 0; i < 60; ++i) {
        const std::uint64_t lo = keys[rng.Below(keys.size())];
        ranges.push_back({lo, lo + rng.Below(64)});
      }
      std::vector<LookupResult> results;
      index.RangeLookupBatch(ranges, &results);
      ASSERT_EQ(results.size(), ranges.size());
      for (std::size_t i = 0; i < ranges.size(); ++i) {
        ASSERT_EQ(results[i],
                  OracleRange(oracle, ranges[i].lo, ranges[i].hi))
            << phase << " range lookup [" << ranges[i].lo << ", "
            << ranges[i].hi << "]";
      }
    }
  };
  check_lookups("fresh");

  if (caps.updates) {
    // Insert fresh keys with distinct rowIDs.
    std::vector<std::uint64_t> insert_keys;
    std::vector<std::uint32_t> insert_rows;
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t k = rng.Below(1ULL << 31);
      const auto row = static_cast<std::uint32_t>(keys.size() + i);
      insert_keys.push_back(k);
      insert_rows.push_back(row);
      oracle.emplace(k, row);
    }
    index.InsertBatch(insert_keys, insert_rows);

    // Erase one instance per key for a mix of present/absent keys.
    std::vector<std::uint64_t> erase_keys;
    for (int i = 0; i < 150; ++i) {
      erase_keys.push_back(i % 3 == 2 ? rng.Below(1ULL << 31)
                                      : keys[rng.Below(keys.size())]);
    }
    for (const std::uint64_t k : erase_keys) {
      const auto it = oracle.find(k);
      if (it != oracle.end()) oracle.erase(it);
    }
    index.EraseBatch(erase_keys);
    EXPECT_EQ(index.size(), oracle.size());
    check_lookups("after updates");
  }
}

TEST_P(ApiConformanceTest, UnsupportedOperationsThrow) {
  AnyIndex index = Make();
  index.Build(MakeKeys(GetParam().key_bits, 64, 7));
  const Capabilities caps = index.capabilities();
  std::vector<std::uint64_t> probes = {1, 2, 3};
  std::vector<KeyRange<std::uint64_t>> ranges = {{1, 5}};
  std::vector<LookupResult> results;
  if (!caps.point_lookup) {
    EXPECT_THROW(index.PointLookupBatch(probes, &results),
                 UnsupportedOperationError);
  }
  if (!caps.range_lookup) {
    EXPECT_THROW(index.RangeLookupBatch(ranges, &results),
                 UnsupportedOperationError);
  }
  if (!caps.updates) {
    EXPECT_THROW(index.InsertBatch(probes, {1, 2, 3}),
                 UnsupportedOperationError);
    EXPECT_THROW(index.EraseBatch(probes), UnsupportedOperationError);
  }
}

// ---------------------------------------------------------------------
// Determinism: parallel batches must be byte-identical to serial ones.
// ---------------------------------------------------------------------

TEST_P(ApiConformanceTest, ParallelExecutionMatchesSerial) {
  AnyIndex index = Make();
  const auto keys = MakeKeys(GetParam().key_bits, 2000, 303);
  index.Build(keys);
  const Capabilities caps = index.capabilities();

  Rng rng(404);
  if (caps.point_lookup) {
    std::vector<std::uint64_t> probes;
    for (int i = 0; i < 1000; ++i) {
      probes.push_back(keys[rng.Below(keys.size())]);
    }
    std::vector<LookupResult> serial;
    std::vector<LookupResult> parallel;
    std::vector<LookupResult> parallel_fine;
    index.PointLookupBatch(probes, &serial, ExecutionPolicy::Serial());
    index.PointLookupBatch(probes, &parallel, ExecutionPolicy::Parallel());
    index.PointLookupBatch(probes, &parallel_fine,
                           ExecutionPolicy::Parallel(/*grain=*/1));
    EXPECT_EQ(serial, parallel);
    EXPECT_EQ(serial, parallel_fine);
  }
  if (caps.range_lookup) {
    std::vector<KeyRange<std::uint64_t>> ranges;
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t lo = keys[rng.Below(keys.size())];
      ranges.push_back({lo, lo + rng.Below(32)});
    }
    std::vector<LookupResult> serial;
    std::vector<LookupResult> parallel;
    index.RangeLookupBatch(ranges, &serial, ExecutionPolicy::Serial());
    index.RangeLookupBatch(ranges, &parallel,
                           ExecutionPolicy::Parallel(/*grain=*/3));
    EXPECT_EQ(serial, parallel);
  }
}

// ---------------------------------------------------------------------
// Combined update waves (UpdateBatch).
// ---------------------------------------------------------------------

// One wave with inserts, erases of present and absent keys, and a pair
// that cancels (a key both inserted and erased in the same wave must
// annihilate, leaving any pre-existing instance untouched) -- identical
// semantics whether the backend runs one native sweep (cgRXu) or the
// decomposed two-sweep path.
TEST_P(ApiConformanceTest, UpdateBatchWaveMatchesOracle) {
  AnyIndex index = Make();
  if (!index.capabilities().updates) {
    EXPECT_THROW(index.UpdateBatch({1}, {1}, {2}),
                 UnsupportedOperationError);
    return;
  }
  // Distinct keys so erase instances are unambiguous across backends.
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 1200; ++i) keys.push_back(3 * i + 1);
  std::multimap<std::uint64_t, std::uint32_t> oracle;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    oracle.emplace(keys[i], static_cast<std::uint32_t>(i));
  }
  index.Build(keys);

  std::vector<std::uint64_t> ins = {6000002, 6000005, 6000008,
                                    keys[10],  // Second instance of a key.
                                    7000001};
  std::vector<std::uint32_t> rows = {9001, 9002, 9003, 9004, 9005};
  std::vector<std::uint64_t> dels = {
      keys[3],  keys[77],  // Present: erased.
      9999999,             // Absent: ignored.
      7000001,             // Cancels against the insert of 7000001.
  };
  // Oracle semantics: cancel (7000001 insert, 7000001 erase) pairwise,
  // then erase, then insert.
  for (const std::uint64_t k : {keys[3], keys[77]}) {
    oracle.erase(oracle.find(k));
  }
  oracle.emplace(6000002, 9001);
  oracle.emplace(6000005, 9002);
  oracle.emplace(6000008, 9003);
  oracle.emplace(keys[10], 9004);

  index.UpdateBatch(ins, rows, dels);
  EXPECT_EQ(index.size(), oracle.size());

  std::vector<std::uint64_t> probes = {keys[3], keys[77], keys[10],
                                       6000002, 6000005, 6000008,
                                       7000001, 9999999, keys[500]};
  if (index.capabilities().point_lookup) {
    std::vector<LookupResult> results;
    index.PointLookupBatch(probes, &results);
    for (std::size_t i = 0; i < probes.size(); ++i) {
      EXPECT_EQ(results[i], OracleRange(oracle, probes[i], probes[i]))
          << "probe " << probes[i];
    }
  }
  if (index.capabilities().range_lookup) {
    std::vector<KeyRange<std::uint64_t>> ranges = {{0, 10000},
                                                   {6000000, 7000100}};
    std::vector<LookupResult> results;
    index.RangeLookupBatch(ranges, &results);
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      EXPECT_EQ(results[i], OracleRange(oracle, ranges[i].lo, ranges[i].hi));
    }
  }
}

TEST(CombinedUpdateTest, OnlyCgrxuReportsCombinedUpdates) {
  EXPECT_TRUE(MakeIndex<std::uint64_t>("cgrxu")
                  ->capabilities()
                  .combined_updates);
  for (const char* backend : {"cgrx", "rx", "sa", "btree", "ht"}) {
    EXPECT_FALSE(MakeIndex<std::uint64_t>(backend)
                     ->capabilities()
                     .combined_updates)
        << backend;
  }
}

// The acceptance assertion of the wave API: a combined insert+delete
// wave on cgRXu costs one whole-structure bucket sweep, strictly less
// than the two sweeps of InsertBatch followed by EraseBatch on the same
// data (observed through the IndexStats update counters).
TEST(CombinedUpdateTest, CgrxuCombinedWaveSweepsOnceNotTwice) {
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 4096; ++i) keys.push_back(2 * i);
  std::vector<std::uint64_t> ins;
  std::vector<std::uint32_t> rows;
  std::vector<std::uint64_t> dels;
  for (std::uint64_t i = 0; i < 512; ++i) {
    ins.push_back(2 * i + 1);
    rows.push_back(static_cast<std::uint32_t>(keys.size() + i));
    dels.push_back(4 * i);  // Present keys.
  }

  const auto combined = MakeIndex<std::uint64_t>("cgrxu");
  combined->Build(std::vector<std::uint64_t>(keys));
  const IndexStats before_combined = combined->Stats();
  combined->UpdateBatch(ins, rows, dels);
  const std::uint64_t combined_sweeps =
      combined->Stats().Delta(before_combined).update_buckets_swept;

  const auto split = MakeIndex<std::uint64_t>("cgrxu");
  split->Build(std::vector<std::uint64_t>(keys));
  const IndexStats before_split = split->Stats();
  split->InsertBatch(ins, rows);
  split->EraseBatch(dels);
  const std::uint64_t split_sweeps =
      split->Stats().Delta(before_split).update_buckets_swept;

  EXPECT_GT(combined_sweeps, 0u);
  EXPECT_LT(combined_sweeps, split_sweeps);
  EXPECT_EQ(2 * combined_sweeps, split_sweeps)
      << "a combined wave must sweep the buckets exactly once, the "
         "decomposed path exactly twice";

  // Both routes end in the same index state.
  EXPECT_EQ(combined->size(), split->size());
  std::vector<std::uint64_t> probes;
  for (std::uint64_t i = 0; i < 2048; ++i) probes.push_back(i);
  std::vector<LookupResult> combined_hits;
  std::vector<LookupResult> split_hits;
  combined->PointLookupBatch(probes, &combined_hits);
  split->PointLookupBatch(probes, &split_hits);
  EXPECT_EQ(combined_hits, split_hits);
}

// ---------------------------------------------------------------------
// ExecutionPolicy edge cases: empty batches, grain larger than the
// batch, grain 1 -- parallel must stay byte-identical to serial on
// every backend that supports the operation.
// ---------------------------------------------------------------------

TEST_P(ApiConformanceTest, ExecutionPolicyEdgeCases) {
  AnyIndex index = Make();
  const auto keys = MakeKeys(GetParam().key_bits, 900, 777);
  index.Build(keys);
  const Capabilities caps = index.capabilities();
  const ExecutionPolicy policies[] = {
      ExecutionPolicy::Serial(),
      ExecutionPolicy::Parallel(/*grain=*/1),
      ExecutionPolicy::Parallel(/*grain=*/1 << 20),  // Grain > batch.
  };

  if (caps.point_lookup) {
    // Empty batch: every policy is a no-op that leaves results empty.
    for (const ExecutionPolicy& policy : policies) {
      std::vector<LookupResult> results(3);
      index.PointLookupBatch({}, &results, policy);
      EXPECT_TRUE(results.empty());
    }
    std::vector<std::uint64_t> probes(keys.begin(), keys.begin() + 257);
    std::vector<LookupResult> serial;
    index.PointLookupBatch(probes, &serial, ExecutionPolicy::Serial());
    for (const ExecutionPolicy& policy : policies) {
      std::vector<LookupResult> results;
      index.PointLookupBatch(probes, &results, policy);
      EXPECT_EQ(results, serial);
    }
  }
  if (caps.range_lookup) {
    for (const ExecutionPolicy& policy : policies) {
      std::vector<LookupResult> results(3);
      index.RangeLookupBatch({}, &results, policy);
      EXPECT_TRUE(results.empty());
    }
    std::vector<KeyRange<std::uint64_t>> ranges;
    for (std::size_t i = 0; i < 97; ++i) {
      ranges.push_back({keys[i], keys[i] + 41});
    }
    std::vector<LookupResult> serial;
    index.RangeLookupBatch(ranges, &serial, ExecutionPolicy::Serial());
    for (const ExecutionPolicy& policy : policies) {
      std::vector<LookupResult> results;
      index.RangeLookupBatch(ranges, &results, policy);
      EXPECT_EQ(results, serial);
    }
  }
  if (caps.updates) {
    // Empty waves are no-ops under every policy.
    const std::size_t size_before = index.size();
    for (const ExecutionPolicy& policy : policies) {
      index.InsertBatch({}, {}, policy);
      index.EraseBatch({}, policy);
      index.UpdateBatch({}, {}, {}, policy);
    }
    EXPECT_EQ(index.size(), size_before);
    // A wave under grain 1 and grain > batch must land the same state.
    index.UpdateBatch({123456789}, {42}, {},
                      ExecutionPolicy::Parallel(/*grain=*/1));
    index.UpdateBatch({}, {}, {123456789},
                      ExecutionPolicy::Parallel(/*grain=*/1 << 20));
    EXPECT_EQ(index.size(), size_before);
  }
}

// ---------------------------------------------------------------------
// IndexStats introspection.
// ---------------------------------------------------------------------

TEST_P(ApiConformanceTest, StatsReportFootprintAndEntries) {
  AnyIndex index = Make();
  const auto keys = MakeKeys(GetParam().key_bits, 500, 11);
  index.Build(keys);
  const IndexStats stats = index.Stats();
  EXPECT_GT(stats.memory_bytes, 0u);
  EXPECT_EQ(stats.entries, keys.size());
}

TEST(IndexStatsTest, CgrxCountsRaysAndBucketProbes) {
  const auto index = MakeIndex<std::uint64_t>("cgrx");
  std::vector<std::uint64_t> keys(4096);
  for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = 3 * i;
  index->Build(std::vector<std::uint64_t>(keys));
  EXPECT_EQ(index->Stats().rays_fired, 0u);

  std::vector<LookupResult> results;
  index->PointLookupBatch(keys, &results);
  const IndexStats stats = index->Stats();
  // Most lookups fire 1-5 rays; a few resolve ray-free against the
  // optimized representation (paper Section III).
  EXPECT_GT(stats.rays_fired, keys.size() / 2);
  EXPECT_LE(stats.rays_fired, 5 * keys.size());
  EXPECT_EQ(stats.buckets_probed, keys.size());
  EXPECT_EQ(stats.filter_rejections, 0u);
}

TEST(IndexStatsTest, MissFilterRejectionsAreCounted) {
  IndexOptions options;
  options.miss_filter_bits_per_key = 16;
  const auto index = MakeIndex<std::uint64_t>("cgrx", options);
  std::vector<std::uint64_t> keys(2048);
  for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = 2 * i;
  index->Build(std::vector<std::uint64_t>(keys));

  std::vector<std::uint64_t> misses(keys.size());
  for (std::size_t i = 0; i < misses.size(); ++i) misses[i] = 2 * i + 1;
  std::vector<LookupResult> results;
  index->PointLookupBatch(misses, &results);
  for (const LookupResult& r : results) EXPECT_TRUE(r.IsMiss());
  // A 16-bits-per-key blocked Bloom filter rejects nearly all misses.
  EXPECT_GT(index->Stats().filter_rejections, misses.size() / 2);
}

TEST(IndexStatsTest, RtScanCountsSegmentRays) {
  const auto index = MakeIndex<std::uint32_t>("rtscan");
  std::vector<std::uint32_t> keys(1024);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<std::uint32_t>(i);
  }
  index->Build(std::vector<std::uint32_t>(keys));
  std::vector<KeyRange<std::uint32_t>> ranges = {{10, 200}, {300, 310}};
  std::vector<LookupResult> results;
  index->RangeLookupBatch(ranges, &results);
  // One segment ray per kSegmentWidth-wide span: [10,200] needs three,
  // [300,310] one.
  EXPECT_EQ(index->Stats().rays_fired, 4u);
}

TEST(IndexStatsTest, RxCountsRays) {
  const auto index = MakeIndex<std::uint32_t>("rx");
  std::vector<std::uint32_t> keys(1024);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<std::uint32_t>(i);
  }
  index->Build(std::vector<std::uint32_t>(keys));
  std::vector<std::uint32_t> probes(keys.begin(), keys.begin() + 100);
  std::vector<LookupResult> results;
  index->PointLookupBatch(probes, &results);
  EXPECT_EQ(index->Stats().rays_fired, probes.size());  // One ray each.
}

// ---------------------------------------------------------------------
// Width-erased handle.
// ---------------------------------------------------------------------

TEST(AnyIndexTest, NarrowsKeysFor32BitBackends) {
  AnyIndex index = MakeAnyIndex("sa", 32);
  EXPECT_EQ(index.key_bits(), 32);
  EXPECT_EQ(index.name(), "sa");
  index.Build({5, 1, 3});
  std::vector<LookupResult> results;
  index.PointLookupBatch({1, 2}, &results);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].match_count, 1u);
  EXPECT_TRUE(results[1].IsMiss());
  EXPECT_NE(index.as32(), nullptr);
  EXPECT_EQ(index.as64(), nullptr);
}

}  // namespace
}  // namespace cgrx::api
