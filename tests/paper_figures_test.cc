// Worked-example tests pinned to the paper's figures beyond Figure 4/5
// (covered in core_cgrx_example_test): the Figure 6 multi-plane lookup
// requiring the full five-ray worst case, and float32-exactness sweeps
// of the scene geometry at the extreme corners of the 23-bit grid --
// the representability argument the whole scheme rests on.
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/cgrx_index.h"
#include "src/util/key_mapping.h"

namespace cgrx::core {
namespace {

using ::cgrx::util::KeyMapping;

// ---------------------------------------------------------------------
// Figure 6: the extended key set spread across multiple planes.
// ---------------------------------------------------------------------

// Figure 6 key set: the Figure 4 keys plus {67,69,80,81,83,91,93} on
// plane z=2 (example mapping: keys 64..95 live on z=2).
std::vector<std::uint64_t> Figure6Keys() {
  return {2,  4,  5,  6,  12, 17, 18, 19, 19, 19,
          19, 19, 22, 91, 93};
}

CgrxConfig Figure6Config(Representation representation) {
  CgrxConfig config;
  config.bucket_size = 3;
  config.representation = representation;
  config.mapping_override = KeyMapping::Example();
  return config;
}

TEST(PaperFigure6, LookupOfKey22CrossesPlanes) {
  // Paper: "Lookup of key 22 when the key set is spread across multiple
  // planes. The example shows the worst case where five rays are
  // required": x-ray misses in row, y-ray misses on plane 0 above row 2,
  // z-ray finds plane marker, then y-ray and x-ray resolve bucket 4.
  //
  // Key 22 is the last key of plane 0 here and a real key, so look up a
  // *gap* value in the same situation too.
  CgrxIndex64 naive(Figure6Config(Representation::kNaive));
  naive.Build(Figure6Keys());
  ASSERT_TRUE(naive.multi_plane());

  // Key 22 exists (bucket 4 in Figure 4 numbering): found in-row.
  EXPECT_EQ(naive.PointLookup(22).match_count, 1u);

  // A key just above 22 but below the plane boundary exercises the full
  // five-ray chain: no rep >= it on plane 0 at/after its row.
  int rays = 0;
  const auto bucket = naive.LocateBucket(23, &rays);
  ASSERT_TRUE(bucket.has_value());
  // First rep >= 23 is 93 (bucket 4: keys {91, 93} after 22's bucket).
  EXPECT_EQ(*bucket, 4u);
  EXPECT_EQ(rays, 5);  // The paper's worst case.
  EXPECT_TRUE(naive.PointLookup(23).IsMiss());
}

TEST(PaperFigure6, DuplicateScanStopsAtFirstLargerKey) {
  // Paper: "The scan stops as soon as the first key larger than 19 is
  // found, namely 22. This ensures that all duplicates are visited."
  for (const Representation rep :
       {Representation::kNaive, Representation::kOptimized}) {
    CgrxIndex64 index(Figure6Config(rep));
    index.Build(Figure6Keys());
    const auto r = index.PointLookup(19);
    EXPECT_EQ(r.match_count, 5u);
    // rowIDs are positions in the (sorted) build input: 7..11.
    EXPECT_EQ(r.row_id_sum, 7u + 8u + 9u + 10u + 11u);
  }
}

TEST(PaperFigure6, OptimizedResolvesCrossPlaneLookupsWithFewerRays) {
  CgrxIndex64 naive(Figure6Config(Representation::kNaive));
  naive.Build(Figure6Keys());
  CgrxIndex64 optimized(Figure6Config(Representation::kOptimized));
  optimized.Build(Figure6Keys());
  int naive_rays = 0;
  int optimized_rays = 0;
  std::int64_t naive_total = 0;
  std::int64_t optimized_total = 0;
  for (std::uint64_t key = 0; key <= 95; ++key) {
    const auto a = naive.PointLookup(key, &naive_rays);
    const auto b = optimized.PointLookup(key, &optimized_rays);
    ASSERT_EQ(a, b) << "key " << key;
    naive_total += naive_rays;
    optimized_total += optimized_rays;
  }
  EXPECT_LE(optimized_total, naive_total);
}

// ---------------------------------------------------------------------
// Float32 exactness at the grid extremes (paper Section II: the key
// mapping "is limited to 23 bits in each dimension to ensure correct
// floating-point arithmetic").
// ---------------------------------------------------------------------

struct CornerCase {
  std::uint32_t x;
  std::uint32_t y;
  std::uint32_t z;
};

class GridCornerTest : public ::testing::TestWithParam<CornerCase> {};

TEST_P(GridCornerTest, LookupsWorkAtExtremeCoordinates) {
  // Build a tiny index whose keys sit at an extreme grid corner; every
  // lookup must behave exactly (hit the key, miss its neighbours).
  // Failures here would indicate vertex or ray coordinates rounding
  // across rows at the top of the float32 range.
  const auto [gx, gy, gz] = GetParam();
  const KeyMapping mapping = KeyMapping::Rx64Scaled();
  const std::uint64_t key = mapping.KeyOf({gx, gy, gz});
  std::vector<std::uint64_t> keys = {key};
  if (key > 0) keys.push_back(key - 1);
  if (key < ~0ULL) keys.push_back(key + 1);
  for (const Representation rep :
       {Representation::kNaive, Representation::kOptimized}) {
    CgrxConfig config;
    config.bucket_size = 2;
    config.representation = rep;
    CgrxIndex64 index(config);
    index.Build(std::vector<std::uint64_t>(keys));
    for (const std::uint64_t k : keys) {
      EXPECT_EQ(index.PointLookup(k).match_count, 1u)
          << "key " << k << " rep " << static_cast<int>(rep);
    }
    // Neighbouring grid positions beyond the stored band must miss.
    if (key > 2) {
      EXPECT_TRUE(index.PointLookup(key - 2).IsMiss());
    }
    if (key < ~0ULL - 2) {
      EXPECT_TRUE(index.PointLookup(key + 2).IsMiss());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corners, GridCornerTest,
    ::testing::Values(
        CornerCase{0, 0, 0},
        // Top of the x range (ulp(2^23) = 1; half-offsets need care).
        CornerCase{(1u << 23) - 1, 0, 0},
        // Top of the y range: world y ~ 2^38, ulp = 2^14 = step/2.
        CornerCase{0, (1u << 23) - 1, 0},
        // Top of the z range: world z ~ 2^43, ulp = 2^20.
        CornerCase{0, 0, (1u << 18) - 1},
        // All three maxed: the worst corner of the grid.
        CornerCase{(1u << 23) - 1, (1u << 23) - 1, (1u << 18) - 1},
        // Mid-range mixed.
        CornerCase{(1u << 22) + 3, (1u << 22) + 5, (1u << 17) + 7}),
    [](const auto& info) {
      return "x" + std::to_string(info.param.x) + "y" +
             std::to_string(info.param.y) + "z" +
             std::to_string(info.param.z);
    });

TEST(GridExactness, WorldCoordinatesRoundTripAtEveryPowerOfTwo) {
  // World coordinates and their half-step ray offsets must be exact for
  // grid values around every power of two in the 23-bit range.
  const KeyMapping m = KeyMapping::Rx64Scaled();
  for (int e = 0; e < 23; ++e) {
    for (const std::int64_t delta : {-1, 0, 1}) {
      const std::int64_t gy = (std::int64_t{1} << e) + delta;
      if (gy < 0 || gy > m.y_max()) continue;
      const double world = static_cast<double>(m.WorldY(gy));
      EXPECT_EQ(world, static_cast<double>(gy) *
                           static_cast<double>(m.step_y()))
          << "gy " << gy;
      // Half-step ray origin offset is exactly representable.
      const float origin = m.WorldY(gy) - 0.5f * m.step_y();
      EXPECT_EQ(static_cast<double>(origin),
                (static_cast<double>(gy) - 0.5) *
                    static_cast<double>(m.step_y()))
          << "gy " << gy;
    }
  }
}

TEST(GridExactness, TriangleVerticesStayWithinHalfStep) {
  // The mkTri offsets must never round onto a neighbouring row/plane,
  // even at the top of the float range. Build single-key scenes at the
  // extremes and check the stored vertex coordinates.
  const KeyMapping m = KeyMapping::Rx64Scaled();
  for (const std::uint32_t gy : {0u, 1u << 22, (1u << 23) - 1}) {
    const std::uint64_t key = m.KeyOf({5, gy, 7});
    CgrxConfig config;
    config.bucket_size = 1;
    CgrxIndex64 index(config);
    index.Build(std::vector<std::uint64_t>{key});
    const auto& soup = index.scene().soup();
    ASSERT_GE(soup.size(), 1u);
    const double center_y = static_cast<double>(m.WorldY(gy));
    const double step = m.step_y();
    for (int corner = 0; corner < 3; ++corner) {
      const double vy = soup.Vertex(0, corner).y;
      EXPECT_LE(std::abs(vy - center_y), 0.5 * step)
          << "gy " << gy << " corner " << corner;
    }
    // The triangle did not collapse in y (it must stay hittable from
    // every axis).
    const double y0 = soup.Vertex(0, 0).y;
    const double y1 = soup.Vertex(0, 1).y;
    EXPECT_NE(y0, y1) << "gy " << gy;
  }
}

}  // namespace
}  // namespace cgrx::core
