// Direct unit tests for RepScene, the shared raytraced
// bucket-location machinery of cgRX and cgRXu: exhaustive Locate sweeps
// against a reference ("first representative >= key"), marker layout
// across rows and planes, flip semantics, and the ray-count contract.
#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/rep_scene.h"
#include "src/util/key_mapping.h"
#include "src/util/rng.h"

namespace cgrx::core {
namespace {

using ::cgrx::util::KeyMapping;
using ::cgrx::util::Rng;

/// Reference implementation: index of the first rep >= key.
std::optional<std::uint32_t> ReferenceLocate(
    const std::vector<std::uint64_t>& reps, std::uint64_t key) {
  const auto it = std::lower_bound(reps.begin(), reps.end(), key);
  if (it == reps.end()) return std::nullopt;
  return static_cast<std::uint32_t>(it - reps.begin());
}

/// Locate contract checker. The naive representation returns exactly
/// the first rep >= key. The optimized representation may return one
/// bucket EARLY for keys that are not representatives: paper rule (1)
/// moves a representative r to r' with r < r' < nextKey, so a gap key
/// in (r, r'] hits the moved triangle of r's bucket. That is correct by
/// construction -- no key exists in the gap, so point lookups miss in
/// the bucket search and range scans (which scan forward) start one
/// bucket early at worst.
void ExpectLocateValid(const RepScene& scene,
                       const std::vector<std::uint64_t>& reps,
                       std::uint64_t key, Representation representation) {
  const auto got = scene.Locate(key);
  const auto reference = ReferenceLocate(reps, key);
  ASSERT_EQ(got.has_value(), reference.has_value()) << "key " << key;
  if (!got.has_value()) return;
  const bool is_rep =
      std::binary_search(reps.begin(), reps.end(), key);
  if (representation == Representation::kNaive || is_rep) {
    ASSERT_EQ(*got, *reference) << "key " << key;
    return;
  }
  ASSERT_TRUE(*got == *reference ||
              (*reference > 0 && *got == *reference - 1))
      << "key " << key << " got " << *got << " reference " << *reference;
}

/// Movable flags derived from reps alone (tests use rep == last key of
/// its bucket with no trailing keys, so the next bucket's rep is the
/// next key).
std::vector<std::uint8_t> MovableFlags(const std::vector<std::uint64_t>& reps,
                                       const KeyMapping& mapping) {
  std::vector<std::uint8_t> movable(reps.size());
  for (std::size_t b = 0; b < reps.size(); ++b) {
    movable[b] = b + 1 >= reps.size() ||
                 mapping.RowKey(reps[b + 1]) != mapping.RowKey(reps[b]);
  }
  return movable;
}

RepScene::Options Options(Representation representation,
                          bool flipping = true) {
  RepScene::Options options;
  options.representation = representation;
  options.enable_flipping = flipping;
  return options;
}

class RepSceneSweepTest : public ::testing::TestWithParam<Representation> {};

TEST_P(RepSceneSweepTest, ExhaustiveLocateOnExampleMapping) {
  // Reps scattered over rows and planes of the tiny example mapping
  // (x: 3 bits, y: 2 bits, z: rest); sweep every key in [0, 160).
  const KeyMapping mapping = KeyMapping::Example();
  const std::vector<std::uint64_t> reps = {5, 17, 19, 23, 40, 41, 63,
                                           64, 95, 129, 155};
  RepScene scene;
  scene.Build(reps, MovableFlags(reps, mapping), mapping,
              Options(GetParam()));
  EXPECT_TRUE(scene.multi_line());
  EXPECT_TRUE(scene.multi_plane());
  for (std::uint64_t key = 0; key < 160; ++key) {
    int rays = 0;
    scene.Locate(key, &rays);
    ASSERT_LE(rays, 5) << "key " << key;
    ExpectLocateValid(scene, reps, key, GetParam());
  }
  EXPECT_FALSE(scene.Locate(200).has_value());
}

TEST_P(RepSceneSweepTest, DuplicateRepsResolveToFirstOfGroup) {
  const KeyMapping mapping = KeyMapping::Example();
  const std::vector<std::uint64_t> reps = {5, 9, 9, 9, 30, 30, 50};
  RepScene scene;
  scene.Build(reps, MovableFlags(reps, mapping), mapping,
              Options(GetParam()));
  // The duplicated rep value itself must resolve to the group's FIRST
  // bucket (that is where the scan for duplicates starts).
  {
    const auto got = scene.Locate(9);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, 1u);
  }
  {
    const auto got = scene.Locate(30);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, 4u);
  }
  // Gap keys obey the relaxed contract (exact or one early).
  for (std::uint64_t key = 6; key <= 29; ++key) {
    ExpectLocateValid(scene, reps, key, GetParam());
  }
}

TEST_P(RepSceneSweepTest, RandomRepSetsAcrossFullMapping) {
  const KeyMapping mapping = KeyMapping::Rx64Scaled();
  Rng rng(17);
  for (int round = 0; round < 4; ++round) {
    std::vector<std::uint64_t> reps;
    for (int i = 0; i < 400; ++i) reps.push_back(rng());
    std::sort(reps.begin(), reps.end());
    reps.erase(std::unique(reps.begin(), reps.end()), reps.end());
    RepScene scene;
    scene.Build(reps, MovableFlags(reps, mapping), mapping,
                Options(GetParam()));
    for (int probe = 0; probe < 2000; ++probe) {
      const std::uint64_t key = probe % 2 == 0
                                    ? reps[rng.Below(reps.size())]
                                    : rng();
      int rays = 0;
      scene.Locate(key, &rays);
      ASSERT_LE(rays, 5);
      ExpectLocateValid(scene, reps, key, GetParam());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Representations, RepSceneSweepTest,
                         ::testing::Values(Representation::kNaive,
                                           Representation::kOptimized),
                         [](const auto& info) {
                           return info.param == Representation::kNaive
                                      ? "Naive"
                                      : "Optimized";
                         });

TEST(RepSceneMarkers, SingleRowSkipsAllMarkers) {
  // All reps in one row: neither representation allocates marker slots.
  const KeyMapping mapping = KeyMapping::Example();
  const std::vector<std::uint64_t> reps = {1, 3, 5, 7};  // Row y=0.
  for (const auto representation :
       {Representation::kNaive, Representation::kOptimized}) {
    RepScene scene;
    scene.Build(reps, MovableFlags(reps, mapping), mapping,
                Options(representation));
    EXPECT_FALSE(scene.multi_line());
    EXPECT_FALSE(scene.multi_plane());
    EXPECT_EQ(scene.scene().soup().size(), reps.size());
  }
}

TEST(RepSceneMarkers, NaiveAllocatesRowAndPlaneRegions) {
  const KeyMapping mapping = KeyMapping::Example();
  const std::vector<std::uint64_t> reps = {1, 9, 40};  // Rows + planes.
  RepScene scene;
  scene.Build(reps, MovableFlags(reps, mapping), mapping,
              Options(Representation::kNaive));
  EXPECT_TRUE(scene.multi_line());
  EXPECT_TRUE(scene.multi_plane());
  // reps + row markers + plane markers = 3 regions.
  EXPECT_EQ(scene.scene().soup().size(), 3 * reps.size());
}

TEST(RepSceneFlip, FlippingNeverChangesResults) {
  const KeyMapping mapping = KeyMapping::Rx64Scaled();
  Rng rng(23);
  std::vector<std::uint64_t> reps;
  for (int i = 0; i < 300; ++i) reps.push_back(rng());
  std::sort(reps.begin(), reps.end());
  reps.erase(std::unique(reps.begin(), reps.end()), reps.end());
  const auto movable = MovableFlags(reps, mapping);
  RepScene with;
  with.Build(reps, movable, mapping,
             Options(Representation::kOptimized, /*flipping=*/true));
  RepScene without;
  without.Build(reps, movable, mapping,
                Options(Representation::kOptimized, /*flipping=*/false));
  std::int64_t rays_with = 0;
  std::int64_t rays_without = 0;
  for (int probe = 0; probe < 3000; ++probe) {
    const std::uint64_t key = rng();
    int rw = 0;
    int rwo = 0;
    ASSERT_EQ(with.Locate(key, &rw), without.Locate(key, &rwo)) << key;
    rays_with += rw;
    rays_without += rwo;
  }
  EXPECT_LE(rays_with, rays_without);
}

TEST(RepSceneEdge, EmptyAndSingleRep) {
  const KeyMapping mapping = KeyMapping::Rx64Scaled();
  RepScene empty;
  empty.Build({}, {}, mapping, Options(Representation::kOptimized));
  EXPECT_FALSE(empty.Locate(42).has_value());

  RepScene single;
  single.Build({1000}, {1}, mapping, Options(Representation::kOptimized));
  EXPECT_EQ(single.Locate(0), std::optional<std::uint32_t>(0));
  EXPECT_EQ(single.Locate(1000), std::optional<std::uint32_t>(0));
  EXPECT_FALSE(single.Locate(1001).has_value());
}

TEST(RepSceneEdge, BelowMinRepShortCircuitsWithoutRays) {
  const KeyMapping mapping = KeyMapping::Rx64Scaled();
  RepScene scene;
  scene.Build({100, 200, 300}, {1, 1, 1}, mapping,
              Options(Representation::kOptimized));
  int rays = -1;
  EXPECT_EQ(scene.Locate(50, &rays), std::optional<std::uint32_t>(0));
  EXPECT_EQ(rays, 0);  // Paper Alg. 2 line 2: no ray fired.
}

TEST(RepSceneMemory, OptimizedNeverLargerThanNaive) {
  const KeyMapping mapping = KeyMapping::Rx64Scaled();
  Rng rng(29);
  std::vector<std::uint64_t> reps;
  for (int i = 0; i < 1000; ++i) reps.push_back(rng());
  std::sort(reps.begin(), reps.end());
  reps.erase(std::unique(reps.begin(), reps.end()), reps.end());
  const auto movable = MovableFlags(reps, mapping);
  RepScene naive;
  naive.Build(reps, movable, mapping, Options(Representation::kNaive));
  RepScene optimized;
  optimized.Build(reps, movable, mapping,
                  Options(Representation::kOptimized));
  EXPECT_LE(optimized.ActiveTriangleCount(), naive.ActiveTriangleCount());
  EXPECT_LE(optimized.MemoryFootprintBytes(), naive.MemoryFootprintBytes());
}

}  // namespace
}  // namespace cgrx::core
