// Unit and property tests for the raytracing substrate: vector/box
// algebra, triangle intersection (winding, clamping), BVH structural
// invariants across all three builders, traversal-vs-brute-force
// equivalence on random scenes, closest-hit ordering, and refit
// semantics (including the bound-inflation behaviour RX updates rely
// on).
#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "src/rt/aabb.h"
#include "src/rt/bvh.h"
#include "src/api/execution_policy.h"
#include "src/rt/scene.h"
#include "src/util/rng.h"

namespace cgrx::rt {
namespace {

using ::cgrx::util::Rng;

// Adds a small triangle centred at (x, y, z) with the all-axes shape
// used by the indexes (front-facing for +axis rays).
std::uint32_t AddCenteredTriangle(Scene* scene, float x, float y, float z,
                                  bool flip = false, float d = 0.25f) {
  const Vec3f o0{x, y + d, z - d};
  const Vec3f o1{x + d, y - d, z};
  const Vec3f o2{x - d, y, z + d};
  return flip ? scene->AddTriangle(o0, o2, o1)
              : scene->AddTriangle(o0, o1, o2);
}

Ray AxisRay(int axis, const Vec3f& origin, float t_max) {
  Ray ray;
  ray.origin = origin;
  ray.direction = {axis == 0 ? 1.0f : 0.0f, axis == 1 ? 1.0f : 0.0f,
                   axis == 2 ? 1.0f : 0.0f};
  ray.t_min = 0;
  ray.t_max = t_max;
  return ray;
}

// ---------------------------------------------------------------------
// Aabb.
// ---------------------------------------------------------------------

TEST(Aabb, GrowAndContain) {
  Aabb box;
  EXPECT_TRUE(box.IsEmpty());
  box.Grow(Vec3f{1, 2, 3});
  box.Grow(Vec3f{-1, 5, 0});
  EXPECT_FALSE(box.IsEmpty());
  EXPECT_EQ(box.min.x, -1);
  EXPECT_EQ(box.max.y, 5);
  Aabb inner;
  inner.Grow(Vec3f{0, 3, 1});
  EXPECT_TRUE(box.Contains(inner));
  inner.Grow(Vec3f{10, 0, 0});
  EXPECT_FALSE(box.Contains(inner));
}

TEST(Aabb, SurfaceArea) {
  Aabb box;
  box.Grow(Vec3f{0, 0, 0});
  box.Grow(Vec3f{2, 3, 4});
  EXPECT_FLOAT_EQ(box.SurfaceArea(), 2.0f * (2 * 3 + 3 * 4 + 4 * 2));
  EXPECT_EQ(Aabb{}.SurfaceArea(), 0.0f);
}

TEST(Aabb, SlabTestAxisAlignedRays) {
  Aabb box;
  box.Grow(Vec3f{1, 1, 1});
  box.Grow(Vec3f{2, 2, 2});
  double t = 0;
  // Ray along +x through the box.
  EXPECT_TRUE(box.HitByRay({0, 1.5, 1.5}, {1, 1e30, 1e30}, 0, 100, &t));
  EXPECT_NEAR(t, 1.0, 1e-9);
  // Ray along +x missing in y.
  EXPECT_FALSE(box.HitByRay({0, 3.0, 1.5}, {1, 1e30, 1e30}, 0, 100, &t));
  // Ray starting inside reports entry at t_min.
  EXPECT_TRUE(box.HitByRay({1.5, 1.5, 1.5}, {1, 1e30, 1e30}, 0, 100, &t));
  EXPECT_LE(t, 0.5);
  // t_max clamping.
  EXPECT_FALSE(box.HitByRay({0, 1.5, 1.5}, {1, 1e30, 1e30}, 0, 0.5, &t));
}

TEST(Aabb, SlabTestHandlesExactSlabOriginWithoutNan) {
  // Origin exactly on a slab plane with a zero direction component used
  // to produce 0 * inf = NaN; the fmin/fmax formulation must stay
  // conservative instead of rejecting.
  Aabb box;
  box.Grow(Vec3f{-1, 0, -1});
  box.Grow(Vec3f{1, 2, 1});
  const double inf = std::numeric_limits<double>::infinity();
  double t = 0;
  EXPECT_TRUE(box.HitByRay({-1, -1, 0}, {inf, 1.0, inf}, 0, 100, &t));
}

// ---------------------------------------------------------------------
// Triangle intersection.
// ---------------------------------------------------------------------

TEST(Triangle, AxisRaysHitThroughCenter) {
  Scene scene;
  AddCenteredTriangle(&scene, 5, 3, 2);
  scene.Build();
  for (int axis = 0; axis < 3; ++axis) {
    Vec3f origin{5, 3, 2};
    (&origin.x)[axis] -= 1.0f;
    const auto hit = scene.CastRay(AxisRay(axis, origin, 10));
    ASSERT_TRUE(hit.has_value()) << "axis " << axis;
    EXPECT_NEAR(hit->t, 1.0, 1e-6) << "axis " << axis;
    EXPECT_TRUE(hit->front_face) << "axis " << axis;
  }
}

TEST(Triangle, FlippedTrianglePresentsBackFace) {
  Scene scene;
  AddCenteredTriangle(&scene, 5, 3, 2, /*flip=*/true);
  scene.Build();
  for (int axis = 0; axis < 3; ++axis) {
    Vec3f origin{5, 3, 2};
    (&origin.x)[axis] -= 1.0f;
    const auto hit = scene.CastRay(AxisRay(axis, origin, 10));
    ASSERT_TRUE(hit.has_value());
    EXPECT_FALSE(hit->front_face) << "axis " << axis;
  }
}

TEST(Triangle, RayLengthClampExcludesTriangle) {
  Scene scene;
  AddCenteredTriangle(&scene, 5, 0, 0);
  scene.Build();
  EXPECT_TRUE(scene.CastRay(AxisRay(0, {4, 0, 0}, 1.5f)).has_value());
  EXPECT_FALSE(scene.CastRay(AxisRay(0, {4, 0, 0}, 0.5f)).has_value());
  // Behind the origin: no hit.
  EXPECT_FALSE(scene.CastRay(AxisRay(0, {6, 0, 0}, 10.0f)).has_value());
}

TEST(Triangle, OffsetRaysMissNeighbouringCells) {
  // A ray through a neighbouring grid cell must not clip a triangle
  // whose extents are half a step.
  Scene scene;
  AddCenteredTriangle(&scene, 5, 3, 2);
  scene.Build();
  EXPECT_FALSE(scene.CastRay(AxisRay(0, {0, 4, 2}, 100)).has_value());
  EXPECT_FALSE(scene.CastRay(AxisRay(0, {0, 3, 3}, 100)).has_value());
  EXPECT_FALSE(scene.CastRay(AxisRay(1, {6, 0, 2}, 100)).has_value());
  EXPECT_FALSE(scene.CastRay(AxisRay(2, {4, 3, 0}, 100)).has_value());
}

TEST(Triangle, DegenerateSlotsAreUnhittable) {
  Scene scene;
  scene.AddDegenerateTriangle();
  const std::uint32_t real = AddCenteredTriangle(&scene, 2, 0, 0);
  scene.AddDegenerateTriangle();
  scene.Build();
  const auto hit = scene.CastRay(AxisRay(0, {0, 0, 0}, 10));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->primitive_index, real);
}

// ---------------------------------------------------------------------
// BVH builders: structural invariants + traversal equivalence.
// ---------------------------------------------------------------------

class BvhBuilderTest : public ::testing::TestWithParam<BvhBuilder> {};

TEST_P(BvhBuilderTest, EveryActivePrimitiveInExactlyOneLeaf) {
  Rng rng(17);
  Scene scene;
  constexpr int kTriangles = 500;
  for (int i = 0; i < kTriangles; ++i) {
    if (i % 7 == 3) {
      scene.AddDegenerateTriangle();
    } else {
      AddCenteredTriangle(&scene,
                          static_cast<float>(rng.Below(1000)),
                          static_cast<float>(rng.Below(100)),
                          static_cast<float>(rng.Below(100)));
    }
  }
  scene.Build(GetParam());
  std::vector<int> seen(scene.triangle_count(), 0);
  for (const std::uint32_t p : scene.bvh().prim_indices()) seen[p]++;
  for (std::uint32_t i = 0; i < scene.triangle_count(); ++i) {
    EXPECT_EQ(seen[i], scene.soup().IsActive(i) ? 1 : 0) << "prim " << i;
  }
}

TEST_P(BvhBuilderTest, ParentBoundsContainChildren) {
  Rng rng(23);
  Scene scene;
  for (int i = 0; i < 300; ++i) {
    AddCenteredTriangle(&scene, static_cast<float>(rng.Below(5000)),
                        static_cast<float>(rng.Below(50)), 0);
  }
  scene.Build(GetParam());
  const auto& nodes = scene.bvh().nodes();
  for (const auto& node : nodes) {
    if (node.IsLeaf()) continue;
    EXPECT_TRUE(node.bounds.Contains(nodes[node.left_or_first].bounds));
    EXPECT_TRUE(node.bounds.Contains(nodes[node.left_or_first + 1].bounds));
  }
}

TEST_P(BvhBuilderTest, LeafBoundsContainTheirTriangles) {
  Rng rng(29);
  Scene scene;
  for (int i = 0; i < 300; ++i) {
    AddCenteredTriangle(&scene, static_cast<float>(rng.Below(5000)),
                        static_cast<float>(rng.Below(50)),
                        static_cast<float>(rng.Below(8)));
  }
  scene.Build(GetParam());
  const auto& bvh = scene.bvh();
  for (const auto& node : bvh.nodes()) {
    if (!node.IsLeaf()) continue;
    for (std::uint32_t i = 0; i < node.prim_count; ++i) {
      const std::uint32_t prim = bvh.prim_indices()[node.left_or_first + i];
      EXPECT_TRUE(node.bounds.Contains(scene.soup().BoundsOf(prim)));
    }
  }
}

TEST_P(BvhBuilderTest, ClosestHitMatchesBruteForce) {
  Rng rng(31);
  Scene scene;
  std::vector<Vec3f> centers;
  for (int i = 0; i < 400; ++i) {
    const Vec3f c{static_cast<float>(rng.Below(200)),
                  static_cast<float>(rng.Below(40)),
                  static_cast<float>(rng.Below(10))};
    centers.push_back(c);
    AddCenteredTriangle(&scene, c.x, c.y, c.z);
  }
  scene.Build(GetParam());
  // Fire x-rays through random (y, z) lines and compare against a brute
  // force over the stored centers.
  for (int q = 0; q < 300; ++q) {
    const float y = static_cast<float>(rng.Below(40));
    const float z = static_cast<float>(rng.Below(10));
    const float x0 = static_cast<float>(rng.Below(200)) - 0.5f;
    std::optional<float> best;
    std::uint32_t best_prim = 0;
    for (std::uint32_t i = 0; i < centers.size(); ++i) {
      if (centers[i].y == y && centers[i].z == z && centers[i].x > x0) {
        const float t = centers[i].x - x0;
        if (!best.has_value() || t < *best) {
          best = t;
          best_prim = i;
        }
      }
    }
    const auto hit = scene.CastRay(AxisRay(0, {x0, y, z}, 1e9f));
    ASSERT_EQ(hit.has_value(), best.has_value()) << "query " << q;
    if (hit.has_value()) {
      EXPECT_NEAR(hit->t, *best, 1e-5);
      EXPECT_EQ(hit->primitive_index, best_prim);
    }
  }
}

TEST_P(BvhBuilderTest, CollectAllMatchesBruteForce) {
  Rng rng(37);
  Scene scene;
  std::vector<Vec3f> centers;
  for (int i = 0; i < 300; ++i) {
    // Deliberately duplicate-heavy positions to stress leaves full of
    // identical boxes (the RX duplicate-keys scenario).
    const Vec3f c{static_cast<float>(rng.Below(40)),
                  static_cast<float>(rng.Below(10)), 0};
    centers.push_back(c);
    AddCenteredTriangle(&scene, c.x, c.y, c.z);
  }
  scene.Build(GetParam());
  for (int q = 0; q < 200; ++q) {
    const float y = static_cast<float>(rng.Below(10));
    const float x0 = static_cast<float>(rng.Below(40)) - 0.5f;
    const float t_max = static_cast<float>(rng.Below(30)) + 0.6f;
    std::vector<std::uint32_t> expected;
    for (std::uint32_t i = 0; i < centers.size(); ++i) {
      if (centers[i].y == y && centers[i].z == 0 && centers[i].x > x0 &&
          centers[i].x - x0 <= t_max) {
        expected.push_back(i);
      }
    }
    std::vector<Hit> hits;
    scene.CastRayCollectAll(AxisRay(0, {x0, y, 0}, t_max), &hits);
    std::vector<std::uint32_t> got;
    got.reserve(hits.size());
    for (const Hit& h : hits) got.push_back(h.primitive_index);
    std::sort(got.begin(), got.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(got, expected) << "query " << q;
  }
}

TEST_P(BvhBuilderTest, AllDuplicatePositionsStillSplit) {
  // 1000 triangles at one position: the builder must fall back to
  // median splits instead of producing one enormous leaf.
  Scene scene;
  for (int i = 0; i < 1000; ++i) AddCenteredTriangle(&scene, 1, 1, 1);
  scene.Build(GetParam(), /*max_leaf_size=*/4);
  std::size_t max_leaf = 0;
  for (const auto& node : scene.bvh().nodes()) {
    if (node.IsLeaf()) {
      max_leaf = std::max<std::size_t>(max_leaf, node.prim_count);
    }
  }
  EXPECT_LE(max_leaf, 4u);
  std::vector<Hit> hits;
  scene.CastRayCollectAll(AxisRay(0, {0, 1, 1}, 5), &hits);
  EXPECT_EQ(hits.size(), 1000u);
}

INSTANTIATE_TEST_SUITE_P(Builders, BvhBuilderTest,
                         ::testing::Values(BvhBuilder::kBinnedSah,
                                           BvhBuilder::kMedianSplit,
                                           BvhBuilder::kMorton),
                         [](const auto& info) {
                           switch (info.param) {
                             case BvhBuilder::kBinnedSah: return "BinnedSah";
                             case BvhBuilder::kMedianSplit: return "Median";
                             case BvhBuilder::kMorton: return "Morton";
                           }
                           return "Unknown";
                         });

// ---------------------------------------------------------------------
// Refit.
// ---------------------------------------------------------------------

TEST(Refit, MovedTriangleIsFoundAfterRefit) {
  Scene scene;
  const std::uint32_t moving = AddCenteredTriangle(&scene, 2, 0, 0);
  AddCenteredTriangle(&scene, 10, 0, 0);
  scene.Build();
  // Move the first triangle; before refit the BVH may miss it.
  const float nx = 50;
  scene.SetTriangle(moving, {nx, 0.25f, -0.25f}, {nx + 0.25f, -0.25f, 0},
                    {nx - 0.25f, 0, 0.25f});
  scene.Refit();
  const auto hit = scene.CastRay(AxisRay(0, {40, 0, 0}, 100));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->primitive_index, moving);
}

TEST(Refit, DegeneratedTriangleDisappears) {
  Scene scene;
  const std::uint32_t a = AddCenteredTriangle(&scene, 2, 0, 0);
  const std::uint32_t b = AddCenteredTriangle(&scene, 5, 0, 0);
  scene.Build();
  scene.SetDegenerateTriangle(a);
  scene.Refit();
  const auto hit = scene.CastRay(AxisRay(0, {0, 0, 0}, 100));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->primitive_index, b);
}

TEST(Refit, InflatesBoundsInsteadOfRestructuring) {
  // The Figure 1c mechanism: parked triangles activated far from their
  // BVH siblings blow up the refitted leaf bounds, so short segment
  // probes (RX point lookups use collect-all rays of length 1) start
  // testing many unrelated triangles. Closest-hit probes hide this via
  // best-t pruning, so the probe mirrors RX and collects all hits.
  Scene scene;
  for (int i = 0; i < 64; ++i) {
    AddCenteredTriangle(&scene, static_cast<float>(i), 0, 0);
  }
  std::vector<std::uint32_t> parked;
  for (int i = 0; i < 64; ++i) {
    parked.push_back(AddCenteredTriangle(&scene, -2, 0, 0));
  }
  scene.Build();
  auto probe = [&scene] {
    TraversalStats stats;
    std::vector<Hit> hits;
    for (int x = 0; x < 64; x += 8) {
      hits.clear();
      scene.CastRayCollectAll(
          AxisRay(0, {static_cast<float>(x) - 0.5f, 0, 0}, 1.0f), &hits,
          &stats);
    }
    return stats.triangle_tests;
  };
  const auto before = probe();
  // Activate all parked triangles at scattered positions along the
  // probe row: each activated leaf's refitted bounds now span from the
  // parking corner to the new position, covering the whole row.
  for (std::size_t i = 0; i < parked.size(); ++i) {
    const float x = 0.5f + static_cast<float>(7 * i % 61);
    scene.SetTriangle(parked[i], {x, 0.25f, -0.25f},
                      {x + 0.25f, -0.25f, 0}, {x - 0.25f, 0, 0.25f});
  }
  scene.Refit();
  const auto after = probe();
  EXPECT_GT(after, 2 * before);
  // A full rebuild restores the lean traversal.
  scene.Build();
  const auto rebuilt = probe();
  EXPECT_LT(rebuilt, after);
}

// ---------------------------------------------------------------------
// Misc.
// ---------------------------------------------------------------------

TEST(Scene, EmptySceneMissesEverything) {
  Scene scene;
  scene.Build();
  EXPECT_FALSE(scene.CastRay(AxisRay(0, {0, 0, 0}, 100)).has_value());
  std::vector<Hit> hits;
  scene.CastRayCollectAll(AxisRay(0, {0, 0, 0}, 100), &hits);
  EXPECT_TRUE(hits.empty());
}

TEST(Scene, MemoryFootprintGrowsWithTriangles) {
  Scene a;
  AddCenteredTriangle(&a, 0, 0, 0);
  a.Build();
  Scene b;
  for (int i = 0; i < 100; ++i) {
    AddCenteredTriangle(&b, static_cast<float>(i), 0, 0);
  }
  b.Build();
  EXPECT_GT(b.MemoryFootprintBytes(), a.MemoryFootprintBytes());
  // 36 bytes of vertex data per triangle, as the paper states.
  EXPECT_EQ(b.soup().MemoryBytes(), 100u * 36u);
}

TEST(ExecutionPolicyKernel, ExecutesEveryIndexOnce) {
  std::vector<std::atomic<int>> counts(4096);
  api::ExecutionPolicy().For(counts.size(), 64, [&](std::size_t i) {
    counts[i].fetch_add(1);
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);

  std::vector<std::atomic<int>> serial_counts(512);
  api::ExecutionPolicy::Serial().For(
      serial_counts.size(), 64,
      [&](std::size_t i) { serial_counts[i].fetch_add(1); });
  for (const auto& c : serial_counts) EXPECT_EQ(c.load(), 1);
}

TEST(BvhDepth, ReasonableForUniformScene) {
  Rng rng(41);
  Scene scene;
  for (int i = 0; i < 4096; ++i) {
    AddCenteredTriangle(&scene, static_cast<float>(rng.Below(1 << 20)),
                        static_cast<float>(rng.Below(64)), 0);
  }
  scene.Build(BvhBuilder::kBinnedSah);
  EXPECT_LE(scene.bvh().Depth(), 64);
  EXPECT_GE(scene.bvh().Depth(), 10);
}

}  // namespace
}  // namespace cgrx::rt
