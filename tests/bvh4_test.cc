// Equivalence suite for the wide (Bvh4) traversal engine against the
// retained binary reference oracle: identical closest hits and
// identical collect-all hit sets across all three builders, both scene
// representations, flipping on/off, and post-Refit scenes; plus the
// Bvh4 compression guarantee and the coherent-vs-unsorted batch
// determinism contract.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/execution_policy.h"
#include "src/core/cgrx_index.h"
#include "src/core/cgrxu_index.h"
#include "src/rt/bvh4.h"
#include "src/rt/scene.h"
#include "src/rt/wide_slab.h"
#include "src/rx/rx_index.h"
#include "src/util/rng.h"
#include "src/util/task_scheduler.h"

namespace cgrx {
namespace {

using ::cgrx::core::CgrxConfig;
using ::cgrx::core::CgrxIndex64;
using ::cgrx::core::CgrxuConfig;
using ::cgrx::core::CgrxuIndex64;
using ::cgrx::core::KeyRange;
using ::cgrx::core::LookupResult;
using ::cgrx::core::Representation;
using ::cgrx::rt::BvhBuilder;
using ::cgrx::rt::Hit;
using ::cgrx::rt::Ray;
using ::cgrx::rt::Scene;
using ::cgrx::rt::TraversalEngine;
using ::cgrx::rt::Vec3f;
using ::cgrx::rx::RxConfig;
using ::cgrx::rx::RxIndex64;
using ::cgrx::util::Rng;

// Compares closest-hit and collect-all results of the two engines for
// one ray. Collect-all order is traversal-dependent, so hit sets are
// compared sorted by primitive index.
void ExpectEngineEquivalence(const Scene& scene, const Ray& ray) {
  const std::optional<Hit> binary = scene.CastRayBinary(ray);
  const std::optional<Hit> wide = scene.CastRayWide(ray);
  ASSERT_EQ(binary.has_value(), wide.has_value());
  if (binary.has_value()) {
    EXPECT_EQ(binary->primitive_index, wide->primitive_index);
    EXPECT_EQ(binary->t, wide->t);
    EXPECT_EQ(binary->front_face, wide->front_face);
  }

  std::vector<Hit> all_binary;
  std::vector<Hit> all_wide;
  scene.CastRayCollectAllBinary(ray, &all_binary);
  scene.CastRayCollectAllWide(ray, &all_wide);
  auto by_prim = [](const Hit& a, const Hit& b) {
    return a.primitive_index < b.primitive_index;
  };
  std::sort(all_binary.begin(), all_binary.end(), by_prim);
  std::sort(all_wide.begin(), all_wide.end(), by_prim);
  ASSERT_EQ(all_binary.size(), all_wide.size());
  for (std::size_t i = 0; i < all_binary.size(); ++i) {
    EXPECT_EQ(all_binary[i].primitive_index, all_wide[i].primitive_index);
    EXPECT_EQ(all_binary[i].t, all_wide[i].t);
    EXPECT_EQ(all_binary[i].front_face, all_wide[i].front_face);
  }
}

// Probes a scene with axis rays through a grid slab plus generic
// diagonal rays, comparing both engines on every cast.
void ProbeScene(const Scene& scene, Rng* rng, int probes) {
  if (scene.triangle_count() == 0) return;
  // Bounding region of the scene's active triangles.
  rt::Aabb bounds;
  for (std::uint32_t i = 0; i < scene.triangle_count(); ++i) {
    if (!scene.soup().IsActive(i)) continue;
    bounds.Grow(scene.soup().BoundsOf(i));
  }
  if (bounds.IsEmpty()) return;
  const Vec3f extent = bounds.Extent();
  for (int p = 0; p < probes; ++p) {
    const float fx =
        bounds.min.x + extent.x * static_cast<float>(rng->NextDouble());
    const float fy =
        bounds.min.y + extent.y * static_cast<float>(rng->NextDouble());
    const float fz =
        bounds.min.z + extent.z * static_cast<float>(rng->NextDouble());
    for (int axis = 0; axis < 3; ++axis) {
      Ray ray;
      ray.origin = {axis == 0 ? bounds.min.x - 1 : fx,
                    axis == 1 ? bounds.min.y - 1 : fy,
                    axis == 2 ? bounds.min.z - 1 : fz};
      ray.direction = {axis == 0 ? 1.0f : 0.0f, axis == 1 ? 1.0f : 0.0f,
                       axis == 2 ? 1.0f : 0.0f};
      ray.t_min = 0;
      ray.t_max = (axis == 0 ? extent.x : axis == 1 ? extent.y : extent.z) + 2;
      ExpectEngineEquivalence(scene, ray);
    }
    // Generic (non-axis) ray through the same point.
    Ray diag;
    diag.origin = {bounds.min.x - 1, bounds.min.y - 1, bounds.min.z - 1};
    diag.direction = {fx - diag.origin.x, fy - diag.origin.y,
                      fz - diag.origin.z};
    diag.t_min = 0;
    diag.t_max = 3;
    ExpectEngineEquivalence(scene, diag);
  }
}

std::vector<std::uint64_t> RandomKeys(std::size_t n, std::uint64_t space,
                                      Rng* rng) {
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng->Below(space);
  return keys;
}

// ---------------------------------------------------------------------
// Raw traversal equivalence on cgRX scenes over every builder /
// representation / flipping combination.
// ---------------------------------------------------------------------

TEST(Bvh4Equivalence, AllBuildersRepresentationsAndFlipping) {
  Rng rng(7);
  const std::vector<std::uint64_t> keys =
      RandomKeys(6000, 1ULL << 23, &rng);  // Example-mapping key space.
  for (const BvhBuilder builder :
       {BvhBuilder::kBinnedSah, BvhBuilder::kMedianSplit,
        BvhBuilder::kMorton}) {
    for (const Representation representation :
         {Representation::kNaive, Representation::kOptimized}) {
      for (const bool flipping : {false, true}) {
        CgrxConfig config;
        config.bucket_size = 8;
        config.bvh_builder = builder;
        config.representation = representation;
        config.enable_flipping = flipping;
        config.mapping_override = util::KeyMapping::Example();
        CgrxIndex64 index(config);
        index.Build(keys);
        SCOPED_TRACE(testing::Message()
                     << "builder=" << static_cast<int>(builder)
                     << " representation=" << static_cast<int>(representation)
                     << " flipping=" << flipping);
        Rng probe_rng(13);
        ProbeScene(index.scene(), &probe_rng, 60);
      }
    }
  }
}

// ---------------------------------------------------------------------
// Index-level equivalence: a binary-engine and a wide-engine cgRX give
// byte-identical lookup results (including the rays-fired counters).
// ---------------------------------------------------------------------

TEST(Bvh4Equivalence, CgrxLookupsMatchBinaryEngine) {
  Rng rng(11);
  const std::vector<std::uint64_t> keys = RandomKeys(20000, 1ULL << 40, &rng);
  CgrxConfig wide_config;
  wide_config.bucket_size = 16;
  CgrxConfig binary_config = wide_config;
  binary_config.traversal_engine = TraversalEngine::kBinary;
  CgrxIndex64 wide(wide_config);
  CgrxIndex64 binary(binary_config);
  wide.Build(keys);
  binary.Build(keys);

  std::vector<std::uint64_t> probes = keys;
  probes.resize(4000);
  for (int i = 0; i < 4000; ++i) probes.push_back(rng.Below(1ULL << 41));
  std::vector<LookupResult> wide_results(probes.size());
  std::vector<LookupResult> binary_results(probes.size());
  wide.PointLookupBatch(probes.data(), probes.size(), wide_results.data(),
                        api::ExecutionPolicy::Serial());
  binary.PointLookupBatch(probes.data(), probes.size(),
                          binary_results.data(),
                          api::ExecutionPolicy::Serial());
  EXPECT_EQ(wide_results, binary_results);

  std::vector<KeyRange<std::uint64_t>> ranges;
  for (int i = 0; i < 1500; ++i) {
    const std::uint64_t lo = rng.Below(1ULL << 40);
    ranges.push_back({lo, lo + rng.Below(1ULL << 20)});
  }
  std::vector<LookupResult> wide_ranges(ranges.size());
  std::vector<LookupResult> binary_ranges(ranges.size());
  wide.RangeLookupBatch(ranges.data(), ranges.size(), wide_ranges.data(),
                        api::ExecutionPolicy::Serial());
  binary.RangeLookupBatch(ranges.data(), ranges.size(),
                          binary_ranges.data(),
                          api::ExecutionPolicy::Serial());
  EXPECT_EQ(wide_ranges, binary_ranges);
}

TEST(Bvh4Equivalence, CgrxuLookupsMatchBinaryEngine) {
  Rng rng(17);
  const std::vector<std::uint64_t> keys = RandomKeys(12000, 1ULL << 36, &rng);
  CgrxuConfig wide_config;
  CgrxuConfig binary_config = wide_config;
  binary_config.traversal_engine = TraversalEngine::kBinary;
  CgrxuIndex64 wide(wide_config);
  CgrxuIndex64 binary(binary_config);
  wide.Build(keys);
  binary.Build(keys);

  // Update waves (splits, deletions) leave the BVH untouched but stress
  // the located buckets.
  std::vector<std::uint64_t> inserts = RandomKeys(4000, 1ULL << 36, &rng);
  std::vector<std::uint32_t> insert_rows(inserts.size(), 1);
  std::vector<std::uint64_t> deletes(keys.begin(), keys.begin() + 2000);
  wide.UpdateBatch(inserts, insert_rows, deletes);
  binary.UpdateBatch(inserts, insert_rows, deletes);

  std::vector<std::uint64_t> probes = RandomKeys(6000, 1ULL << 37, &rng);
  std::vector<LookupResult> wide_results(probes.size());
  std::vector<LookupResult> binary_results(probes.size());
  wide.PointLookupBatch(probes.data(), probes.size(), wide_results.data(),
                        api::ExecutionPolicy::Serial());
  binary.PointLookupBatch(probes.data(), probes.size(),
                          binary_results.data(),
                          api::ExecutionPolicy::Serial());
  EXPECT_EQ(wide_results, binary_results);
}

// ---------------------------------------------------------------------
// Post-Refit equivalence: refitted (inflated) bounds must traverse
// identically, including deactivated slots and parked-slot activation.
// ---------------------------------------------------------------------

TEST(Bvh4Equivalence, RxRefitScenesMatchBinaryEngine) {
  Rng rng(23);
  std::vector<std::uint64_t> keys = RandomKeys(8000, 1ULL << 30, &rng);
  RxConfig config;
  config.spare_capacity = 0.3;
  RxIndex64 index(config);
  index.Build(keys);

  // Refit wave 1: inserts activate parked slots far from their leaves.
  std::vector<std::uint64_t> inserts = RandomKeys(1500, 1ULL << 30, &rng);
  std::vector<std::uint32_t> insert_rows(inserts.size(), 9);
  index.InsertBatchRefit(inserts, insert_rows);
  Rng probe_rng(29);
  ProbeScene(index.scene(), &probe_rng, 40);

  // Refit wave 2: deletions degenerate slots in place.
  std::vector<std::uint64_t> deletes(keys.begin(), keys.begin() + 1500);
  index.EraseBatchRefit(deletes);
  ProbeScene(index.scene(), &probe_rng, 40);

  // Lookup results stay equal to a binary-engine index in the same
  // post-refit state.
  RxConfig binary_config = config;
  binary_config.traversal_engine = TraversalEngine::kBinary;
  RxIndex64 binary(binary_config);
  binary.Build(keys);
  binary.InsertBatchRefit(inserts, insert_rows);
  binary.EraseBatchRefit(deletes);
  std::vector<std::uint64_t> probes = RandomKeys(5000, 1ULL << 31, &rng);
  std::vector<LookupResult> wide_results(probes.size());
  std::vector<LookupResult> binary_results(probes.size());
  index.PointLookupBatch(probes.data(), probes.size(), wide_results.data(),
                         api::ExecutionPolicy::Serial());
  binary.PointLookupBatch(probes.data(), probes.size(),
                          binary_results.data(),
                          api::ExecutionPolicy::Serial());
  EXPECT_EQ(wide_results, binary_results);
}

TEST(Bvh4Equivalence, SceneRefitAfterVertexMoves) {
  Rng rng(31);
  Scene scene;
  for (int i = 0; i < 3000; ++i) {
    const float x = static_cast<float>(rng.Below(1024));
    const float y = static_cast<float>(rng.Below(64));
    const float z = static_cast<float>(rng.Below(16));
    const Vec3f o0{x, y + 0.25f, z - 0.25f};
    const Vec3f o1{x + 0.25f, y - 0.25f, z};
    const Vec3f o2{x - 0.25f, y, z + 0.25f};
    scene.AddTriangle(o0, o1, o2);
  }
  scene.Build();
  // Move a third of the triangles (inflating leaf bounds), deactivate a
  // few, then refit.
  for (std::uint32_t i = 0; i < 1000; ++i) {
    const float x = static_cast<float>(rng.Below(1024));
    const float y = static_cast<float>(rng.Below(64));
    scene.SetTriangle(i * 3, {x, y + 0.25f, 0}, {x + 0.25f, y - 0.25f, 0.5f},
                      {x - 0.25f, y, 1.0f});
  }
  for (std::uint32_t i = 0; i < 200; ++i) {
    scene.SetDegenerateTriangle(i * 7 + 1);
  }
  scene.Refit();
  Rng probe_rng(37);
  ProbeScene(scene, &probe_rng, 80);
}

// ---------------------------------------------------------------------
// Compression: the wide structure must be substantially smaller than
// the binary structure it replaces.
// ---------------------------------------------------------------------

TEST(Bvh4, NodeMemoryAtMost60PercentOfBinary) {
  Rng rng(41);
  const std::vector<std::uint64_t> keys = RandomKeys(200000, 1ULL << 44, &rng);
  CgrxConfig config;
  config.bucket_size = 32;
  CgrxIndex64 index(config);
  index.Build(keys);
  const Scene& scene = index.scene();
  EXPECT_GT(scene.bvh4().MemoryBytes(), 0u);
  EXPECT_LE(static_cast<double>(scene.bvh4().MemoryBytes()),
            0.6 * static_cast<double>(scene.bvh().MemoryBytes()));
  // The configured (wide) engine is what the scene footprint reports:
  // wide nodes plus the primitive index array shared with the binary
  // build substrate.
  EXPECT_EQ(scene.MemoryFootprintBytes(),
            scene.soup().MemoryBytes() + scene.bvh4().MemoryBytes() +
                scene.bvh().prim_indices().size() * sizeof(std::uint32_t));
}

// ---------------------------------------------------------------------
// Batch cast API: CastRays with a shared context must agree with the
// per-ray entry point, including the hit_mask contract on misses.
// ---------------------------------------------------------------------

TEST(SceneBatch, CastRaysMatchesPerRayCasts) {
  Rng rng(53);
  CgrxConfig config;
  config.bucket_size = 8;
  config.mapping_override = util::KeyMapping::Example();
  CgrxIndex64 index(config);
  index.Build(RandomKeys(4000, 1ULL << 23, &rng));
  const Scene& scene = index.scene();
  const auto& mapping = index.mapping();

  // Guaranteed hits: full-row rays along bucket-representative rows;
  // near-guaranteed misses: rays along random (mostly empty) rows.
  std::vector<Ray> rays;
  const std::size_t rep_rays =
      std::min<std::size_t>(250, index.num_buckets());
  for (std::size_t b = 0; b < rep_rays; ++b) {
    const auto g = mapping.GridOf(
        static_cast<std::uint64_t>(index.buckets().RepKey(b)));
    Ray ray;
    ray.origin = {mapping.WorldX(0) - 0.5f, mapping.WorldY(g.y),
                  mapping.WorldZ(g.z)};
    ray.direction = {1, 0, 0};
    ray.t_min = 0;
    ray.t_max = static_cast<float>(mapping.x_max()) + 2.0f;
    rays.push_back(ray);
  }
  for (int i = 0; i < 250; ++i) {
    const auto g = mapping.GridOf(rng.Below(1ULL << 23));
    Ray ray;
    ray.origin = {mapping.WorldX(g.x) - 0.5f, mapping.WorldY(g.y),
                  mapping.WorldZ(g.z)};
    ray.direction = {1, 0, 0};
    ray.t_min = 0;
    ray.t_max = 0.25f;
    rays.push_back(ray);
  }

  std::vector<Hit> hits(rays.size());
  std::vector<std::uint8_t> mask(rays.size(), 2);
  rt::TraversalContext ctx;
  rt::TraversalStats stats;
  scene.CastRays(rays.data(), rays.size(), hits.data(), mask.data(), &ctx,
                 &stats);
  EXPECT_GT(stats.nodes_visited, 0u);
  std::size_t hit_count = 0;
  for (std::size_t i = 0; i < rays.size(); ++i) {
    const std::optional<Hit> single = scene.CastRay(rays[i]);
    ASSERT_EQ(mask[i], single.has_value() ? 1 : 0);
    if (single.has_value()) {
      ++hit_count;
      EXPECT_EQ(hits[i].primitive_index, single->primitive_index);
      EXPECT_EQ(hits[i].t, single->t);
      EXPECT_EQ(hits[i].front_face, single->front_face);
    }
  }
  EXPECT_GT(hit_count, 0u);
  EXPECT_LT(hit_count, rays.size());
}

// ---------------------------------------------------------------------
// Coherent scheduling: reordered execution must be invisible in the
// results, for every index and for serial and parallel policies alike.
// ---------------------------------------------------------------------

TEST(CoherentBatches, CgrxSortedMatchesUnsortedAndParallel) {
  Rng rng(43);
  const std::vector<std::uint64_t> keys = RandomKeys(30000, 1ULL << 42, &rng);
  CgrxConfig coherent_config;
  CgrxConfig unsorted_config;
  unsorted_config.coherent_batches = false;
  CgrxIndex64 coherent(coherent_config);
  CgrxIndex64 unsorted(unsorted_config);
  coherent.Build(keys);
  unsorted.Build(keys);

  std::vector<std::uint64_t> probes(keys.begin(), keys.begin() + 5000);
  for (int i = 0; i < 3000; ++i) probes.push_back(rng.Below(1ULL << 43));
  ASSERT_GE(probes.size(), core::kCoherentBatchMin);

  std::vector<LookupResult> a(probes.size());
  std::vector<LookupResult> b(probes.size());
  std::vector<LookupResult> c(probes.size());
  coherent.PointLookupBatch(probes.data(), probes.size(), a.data(),
                            api::ExecutionPolicy::Serial());
  unsorted.PointLookupBatch(probes.data(), probes.size(), b.data(),
                            api::ExecutionPolicy::Serial());
  coherent.PointLookupBatch(probes.data(), probes.size(), c.data(),
                            api::ExecutionPolicy::Parallel());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);

  std::vector<KeyRange<std::uint64_t>> ranges;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t lo = rng.Below(1ULL << 42);
    ranges.push_back({lo, lo + rng.Below(1ULL << 18)});
  }
  std::vector<LookupResult> ra(ranges.size());
  std::vector<LookupResult> rb(ranges.size());
  coherent.RangeLookupBatch(ranges.data(), ranges.size(), ra.data(),
                            api::ExecutionPolicy::Parallel());
  unsorted.RangeLookupBatch(ranges.data(), ranges.size(), rb.data(),
                            api::ExecutionPolicy::Serial());
  EXPECT_EQ(ra, rb);
}

// ---------------------------------------------------------------------
// SIMD slab test: the vectorized 4-wide child box test must agree with
// the pinned scalar reference bit for bit -- same hit mask, same entry
// distances -- over every node of a real quantized BVH, all three ray
// axes, and randomized origins/intervals (including refit-emptied and
// partially filled nodes).
// ---------------------------------------------------------------------

#if CGRX_WIDE_SLAB_SIMD
template <int A>
void ExpectSimdMatchesScalarOnNode(const rt::Bvh4::Node& node, Rng* rng) {
  const float scale[3] = {node.Scale(0), node.Scale(1), node.Scale(2)};
  const rt::Aabb frame = [&] {
    rt::Aabb box;
    for (int c = 0; c < node.num_children; ++c) {
      box.Grow(node.ChildBounds(c));
    }
    return box;
  }();
  for (int probe = 0; probe < 8; ++probe) {
    // Origins in and around the node's frame so all mask shapes occur.
    auto jitter = [&](float lo, float hi) {
      const double t = rng->NextDouble() * 1.4 - 0.2;
      return static_cast<double>(lo) +
             t * (static_cast<double>(hi) - static_cast<double>(lo));
    };
    const double oa = jitter(frame.min[A] - 1, frame.max[A] + 1);
    const double ou =
        jitter(frame.min[(A + 1) % 3], frame.max[(A + 1) % 3]);
    const double ov =
        jitter(frame.min[(A + 2) % 3], frame.max[(A + 2) % 3]);
    const double t_min = 0;
    const double t_max = rng->NextDouble() * 64;
    double scalar_t[rt::Bvh4::kWidth] = {-1, -1, -1, -1};
    double simd_t[rt::Bvh4::kWidth] = {-1, -1, -1, -1};
    const int scalar_mask = rt::detail::WideAxisChildrenScalar<A>(
        node, scale, oa, ou, ov, t_min, t_max, scalar_t);
    const int simd_mask = rt::detail::WideAxisChildrenSimd<A>(
        node, scale, oa, ou, ov, t_min, t_max, simd_t);
    ASSERT_EQ(simd_mask, scalar_mask);
    for (int c = 0; c < rt::Bvh4::kWidth; ++c) {
      if ((scalar_mask & (1 << c)) != 0) {
        ASSERT_EQ(simd_t[c], scalar_t[c]);
      }
    }
  }
}

TEST(WideSlabSimd, MatchesScalarReferenceBitForBit) {
  Rng rng(59);
  CgrxConfig config;
  config.bucket_size = 8;
  CgrxIndex64 index(config);
  index.Build(RandomKeys(30000, 1ULL << 34, &rng));
  const rt::Bvh4& bvh4 = index.scene().bvh4();
  ASSERT_FALSE(bvh4.empty());
  Rng probe_rng(61);
  for (const rt::Bvh4::Node& node : bvh4.nodes()) {
    ExpectSimdMatchesScalarOnNode<0>(node, &probe_rng);
    ExpectSimdMatchesScalarOnNode<1>(node, &probe_rng);
    ExpectSimdMatchesScalarOnNode<2>(node, &probe_rng);
  }
}

TEST(WideSlabSimd, HandlesEmptyMarkedAndPartialNodes) {
  // A hand-built node: two real children, one refit-emptied (qlo >
  // qhi), one absent (num_children = 3); lanes past num_children must
  // never contribute to the mask.
  rt::Bvh4::Node node{};
  node.origin = {0, 0, 0};
  for (int axis = 0; axis < 3; ++axis) node.exp[axis] = 127;  // Scale 1.
  node.num_children = 3;
  for (int axis = 0; axis < 3; ++axis) {
    node.qlo[axis][0] = 0;
    node.qhi[axis][0] = 10;
    node.qlo[axis][1] = 20;
    node.qhi[axis][1] = 30;
    node.qlo[axis][2] = 1;  // Inverted: refit-emptied child.
    node.qhi[axis][2] = 0;
    node.qlo[axis][3] = 0;  // Absent lane, deliberately "hittable".
    node.qhi[axis][3] = 255;
  }
  const float scale[3] = {1, 1, 1};
  Rng rng(67);
  for (int probe = 0; probe < 200; ++probe) {
    const double oa = rng.NextDouble() * 40 - 5;
    const double ou = rng.NextDouble() * 40 - 5;
    const double ov = rng.NextDouble() * 40 - 5;
    double scalar_t[rt::Bvh4::kWidth];
    double simd_t[rt::Bvh4::kWidth];
    const int scalar_mask = rt::detail::WideAxisChildrenScalar<1>(
        node, scale, oa, ou, ov, 0, 100, scalar_t);
    const int simd_mask = rt::detail::WideAxisChildrenSimd<1>(
        node, scale, oa, ou, ov, 0, 100, simd_t);
    ASSERT_EQ(simd_mask, scalar_mask);
    EXPECT_EQ(scalar_mask & (1 << 2), 0);  // Emptied child never hits.
    EXPECT_EQ(scalar_mask & (1 << 3), 0);  // Absent lane never hits.
  }
}
#endif  // CGRX_WIDE_SLAB_SIMD

// ---------------------------------------------------------------------
// Parallel build determinism: the fragment cutoff is thread-count
// independent, so a serial build and a scheduler-parallel build of the
// same soup produce byte-identical node arrays (binary and wide).
// ---------------------------------------------------------------------

TEST(ParallelBuild, SerialAndParallelBuildsAreByteIdentical) {
  Rng rng(71);
  const std::vector<std::uint64_t> keys = RandomKeys(40000, 1ULL << 38, &rng);
  for (const BvhBuilder builder :
       {BvhBuilder::kBinnedSah, BvhBuilder::kMedianSplit,
        BvhBuilder::kMorton}) {
    SCOPED_TRACE(testing::Message() << "builder=" << static_cast<int>(builder));
    CgrxConfig config;
    config.bucket_size = 16;
    config.bvh_builder = builder;
    CgrxIndex64 parallel_index(config);
    parallel_index.Build(keys);
    CgrxIndex64 serial_index(config);
    {
      util::TaskScheduler::SerialScope force_serial;
      serial_index.Build(keys);
    }
    const rt::Bvh& pb = parallel_index.scene().bvh();
    const rt::Bvh& sb = serial_index.scene().bvh();
    ASSERT_EQ(pb.nodes().size(), sb.nodes().size());
    for (std::size_t i = 0; i < pb.nodes().size(); ++i) {
      ASSERT_EQ(std::memcmp(&pb.nodes()[i], &sb.nodes()[i],
                            sizeof(rt::Bvh::Node)),
                0)
          << "node " << i;
    }
    ASSERT_EQ(pb.prim_indices(), sb.prim_indices());
    const rt::Bvh4& p4 = parallel_index.scene().bvh4();
    const rt::Bvh4& s4 = serial_index.scene().bvh4();
    ASSERT_EQ(p4.nodes().size(), s4.nodes().size());
    for (std::size_t i = 0; i < p4.nodes().size(); ++i) {
      // Field-wise (the 64-byte node has tail padding memcmp would
      // trip on).
      const rt::Bvh4::Node& p = p4.nodes()[i];
      const rt::Bvh4::Node& s = s4.nodes()[i];
      ASSERT_EQ(p.num_children, s.num_children) << "wide node " << i;
      ASSERT_EQ(p.origin.x, s.origin.x) << "wide node " << i;
      ASSERT_EQ(p.origin.y, s.origin.y) << "wide node " << i;
      ASSERT_EQ(p.origin.z, s.origin.z) << "wide node " << i;
      for (int axis = 0; axis < 3; ++axis) {
        ASSERT_EQ(p.exp[axis], s.exp[axis]) << "wide node " << i;
        for (int c = 0; c < rt::Bvh4::kWidth; ++c) {
          ASSERT_EQ(p.qlo[axis][c], s.qlo[axis][c]) << "wide node " << i;
          ASSERT_EQ(p.qhi[axis][c], s.qhi[axis][c]) << "wide node " << i;
        }
      }
      for (int c = 0; c < rt::Bvh4::kWidth; ++c) {
        ASSERT_EQ(p.count[c], s.count[c]) << "wide node " << i;
        ASSERT_EQ(p.child[c], s.child[c]) << "wide node " << i;
      }
    }
  }
}

// Same property above the parallel-split threshold: with > 2^16
// primitives the top SAH splits take the parallel
// reduction/histogram/stable-partition path, which must partition
// exactly like the serial (stable) path for the node arrays to stay
// byte-identical.
TEST(ParallelBuild, LargeSahBuildCrossesParallelSplitThreshold) {
  Rng rng(73);
  Scene parallel_scene;
  Scene serial_scene;
  for (int i = 0; i < 70000; ++i) {
    const float x = static_cast<float>(rng.Below(4096));
    const float y = static_cast<float>(rng.Below(512));
    const float z = static_cast<float>(rng.Below(64));
    const Vec3f v0{x, y + 0.25f, z - 0.25f};
    const Vec3f v1{x + 0.25f, y - 0.25f, z};
    const Vec3f v2{x - 0.25f, y, z + 0.25f};
    parallel_scene.AddTriangle(v0, v1, v2);
    serial_scene.AddTriangle(v0, v1, v2);
  }
  parallel_scene.Build(BvhBuilder::kBinnedSah, 4);
  {
    util::TaskScheduler::SerialScope force_serial;
    serial_scene.Build(BvhBuilder::kBinnedSah, 4);
  }
  const rt::Bvh& pb = parallel_scene.bvh();
  const rt::Bvh& sb = serial_scene.bvh();
  ASSERT_EQ(pb.nodes().size(), sb.nodes().size());
  for (std::size_t i = 0; i < pb.nodes().size(); ++i) {
    ASSERT_EQ(std::memcmp(&pb.nodes()[i], &sb.nodes()[i],
                          sizeof(rt::Bvh::Node)),
              0)
        << "node " << i;
  }
  ASSERT_EQ(pb.prim_indices(), sb.prim_indices());
}

// The binary Refit's level-parallel sweep (nodes bucketed by depth,
// levels processed bottom-up with every node of a level concurrent)
// must refit to exactly the serial reverse sweep's bytes: each node's
// bounds come from the same children/prims through the same float ops,
// whatever the thread count.
TEST(ParallelRefit, LevelParallelRefitIsByteIdenticalToSerial) {
  Rng rng(77);
  Scene parallel_scene;
  Scene serial_scene;
  const int kTriangles = 150000;  // Enough nodes to cross the
                                  // parallel-refit threshold.
  for (int i = 0; i < kTriangles; ++i) {
    const float x = static_cast<float>(rng.Below(8192));
    const float y = static_cast<float>(rng.Below(1024));
    const float z = static_cast<float>(rng.Below(64));
    const Vec3f v0{x, y + 0.25f, z - 0.25f};
    const Vec3f v1{x + 0.25f, y - 0.25f, z};
    const Vec3f v2{x - 0.25f, y, z + 0.25f};
    parallel_scene.AddTriangle(v0, v1, v2);
    serial_scene.AddTriangle(v0, v1, v2);
  }
  // Identical topology in both scenes (builds are byte-identical per
  // the tests above; build serial to make that independent here).
  {
    util::TaskScheduler::SerialScope force_serial;
    parallel_scene.Build(BvhBuilder::kBinnedSah, 4);
    serial_scene.Build(BvhBuilder::kBinnedSah, 4);
  }
  ASSERT_GE(parallel_scene.bvh().nodes().size(), std::size_t{1} << 16)
      << "test scene too small to exercise the level-parallel sweep";
  // Mutate vertex data the way RX updates do: move some triangles,
  // degenerate others.
  for (int i = 0; i < kTriangles; i += 17) {
    const auto slot = static_cast<std::uint32_t>(i);
    if (i % 51 == 0) {
      parallel_scene.SetDegenerateTriangle(slot);
      serial_scene.SetDegenerateTriangle(slot);
      continue;
    }
    const float x = static_cast<float>(rng.Below(8192));
    const float y = static_cast<float>(rng.Below(1024));
    const Vec3f v0{x, y + 0.25f, 0.75f};
    const Vec3f v1{x + 0.25f, y - 0.25f, 1.0f};
    const Vec3f v2{x - 0.25f, y, 1.25f};
    parallel_scene.SetTriangle(slot, v0, v1, v2);
    serial_scene.SetTriangle(slot, v0, v1, v2);
  }
  parallel_scene.Refit();
  {
    util::TaskScheduler::SerialScope force_serial;
    serial_scene.Refit();
  }
  const rt::Bvh& pb = parallel_scene.bvh();
  const rt::Bvh& sb = serial_scene.bvh();
  ASSERT_EQ(pb.nodes().size(), sb.nodes().size());
  for (std::size_t i = 0; i < pb.nodes().size(); ++i) {
    ASSERT_EQ(std::memcmp(&pb.nodes()[i], &sb.nodes()[i],
                          sizeof(rt::Bvh::Node)),
              0)
        << "refit node " << i;
  }
}

TEST(CoherentBatches, RxAndCgrxuSortedMatchesUnsorted) {
  Rng rng(47);
  const std::vector<std::uint64_t> keys = RandomKeys(20000, 1ULL << 34, &rng);
  std::vector<std::uint64_t> probes(keys.begin(), keys.begin() + 4000);
  for (int i = 0; i < 2000; ++i) probes.push_back(rng.Below(1ULL << 35));

  {
    RxConfig coherent_config;
    RxConfig unsorted_config;
    unsorted_config.coherent_batches = false;
    RxIndex64 coherent(coherent_config);
    RxIndex64 unsorted(unsorted_config);
    coherent.Build(keys);
    unsorted.Build(keys);
    std::vector<LookupResult> a(probes.size());
    std::vector<LookupResult> b(probes.size());
    coherent.PointLookupBatch(probes.data(), probes.size(), a.data(),
                              api::ExecutionPolicy::Parallel());
    unsorted.PointLookupBatch(probes.data(), probes.size(), b.data(),
                              api::ExecutionPolicy::Serial());
    EXPECT_EQ(a, b);
  }
  {
    CgrxuConfig coherent_config;
    CgrxuConfig unsorted_config;
    unsorted_config.coherent_batches = false;
    CgrxuIndex64 coherent(coherent_config);
    CgrxuIndex64 unsorted(unsorted_config);
    coherent.Build(keys);
    unsorted.Build(keys);
    std::vector<LookupResult> a(probes.size());
    std::vector<LookupResult> b(probes.size());
    coherent.PointLookupBatch(probes.data(), probes.size(), a.data(),
                              api::ExecutionPolicy::Parallel());
    unsorted.PointLookupBatch(probes.data(), probes.size(), b.data(),
                              api::ExecutionPolicy::Serial());
    EXPECT_EQ(a, b);
  }
}

}  // namespace
}  // namespace cgrx
