// Tests for the Bloom miss-filter extension: the blocked Bloom filter
// substrate itself (no false negatives, bounded false positives) and
// its integration with cgRX (identical results, zero rays for filtered
// misses, footprint accounting).
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/cgrx_index.h"
#include "src/util/bloom_filter.h"
#include "src/util/rng.h"
#include "src/util/workloads.h"

namespace cgrx {
namespace {

using ::cgrx::util::BloomFilter;
using ::cgrx::util::Rng;

TEST(BloomFilter, NeverReportsFalseNegatives) {
  Rng rng(1);
  BloomFilter filter(10000, 10.0);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 10000; ++i) keys.push_back(rng());
  for (const auto k : keys) filter.Insert(k);
  for (const auto k : keys) EXPECT_TRUE(filter.MayContain(k));
}

class BloomFprTest : public ::testing::TestWithParam<double> {};

TEST_P(BloomFprTest, FalsePositiveRateIsBounded) {
  const double bits_per_key = GetParam();
  Rng rng(2);
  BloomFilter filter(20000, bits_per_key);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 20000; ++i) keys.push_back(rng() | 1);
  for (const auto k : keys) filter.Insert(k);
  int false_positives = 0;
  constexpr int kProbes = 20000;
  for (int i = 0; i < kProbes; ++i) {
    if (filter.MayContain(rng() & ~1ULL)) ++false_positives;  // Even keys.
  }
  const double fpr =
      static_cast<double>(false_positives) / static_cast<double>(kProbes);
  // Blocked filters trade a little accuracy for single-line probes;
  // generous bounds still catch broken hashing.
  if (bits_per_key >= 12) {
    EXPECT_LT(fpr, 0.02);
  } else if (bits_per_key >= 8) {
    EXPECT_LT(fpr, 0.08);
  } else {
    EXPECT_LT(fpr, 0.25);
  }
}

INSTANTIATE_TEST_SUITE_P(BitsPerKey, BloomFprTest,
                         ::testing::Values(4.0, 8.0, 12.0, 16.0),
                         [](const auto& info) {
                           return "bits" + std::to_string(
                                               static_cast<int>(info.param));
                         });

TEST(BloomFilter, EmptyFilterSaysMaybeToEverything) {
  BloomFilter filter;
  EXPECT_TRUE(filter.MayContain(0));
  EXPECT_TRUE(filter.MayContain(~0ULL));
  EXPECT_TRUE(filter.empty());
}

TEST(BloomFilter, FootprintMatchesConfiguredBits) {
  BloomFilter filter(1 << 16, 8.0);
  // 8 bits/key over 2^16 keys = 64 KiB, rounded to blocks.
  EXPECT_NEAR(static_cast<double>(filter.MemoryFootprintBytes()), 65536.0,
              64.0);
}

TEST(CgrxMissFilter, ResultsAreUnchanged) {
  const auto keys = util::MakeDistributedKeySet(
      util::KeyDistribution::kUniform, 5000, 64, 3);
  core::CgrxConfig plain_cfg;
  core::CgrxIndex64 plain(plain_cfg);
  plain.Build(std::vector<std::uint64_t>(keys));
  core::CgrxConfig filtered_cfg;
  filtered_cfg.miss_filter_bits_per_key = 10.0;
  core::CgrxIndex64 filtered(filtered_cfg);
  filtered.Build(std::vector<std::uint64_t>(keys));
  Rng rng(4);
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t k = i % 2 == 0 ? keys[rng.Below(keys.size())] : rng();
    ASSERT_EQ(plain.PointLookup(k), filtered.PointLookup(k)) << k;
  }
}

TEST(CgrxMissFilter, FilteredMissesFireNoRays) {
  const auto keys = util::MakeDistributedKeySet(
      util::KeyDistribution::kUniform, 5000, 64, 5);
  core::CgrxConfig config;
  config.miss_filter_bits_per_key = 10.0;
  core::CgrxIndex64 index(config);
  index.Build(std::vector<std::uint64_t>(keys));
  Rng rng(6);
  std::int64_t rays_on_misses = 0;
  int misses = 0;
  for (int i = 0; i < 3000; ++i) {
    int rays = 0;
    const auto r = index.PointLookup(rng(), &rays);
    if (r.IsMiss()) {
      rays_on_misses += rays;
      ++misses;
    }
  }
  ASSERT_GT(misses, 2900);  // Random 64-bit probes virtually never hit.
  // Nearly every miss is filtered before any ray fires; only Bloom
  // false positives pay the ray cost.
  EXPECT_LT(static_cast<double>(rays_on_misses),
            0.2 * static_cast<double>(misses));
}

TEST(CgrxMissFilter, FootprintGrowsByConfiguredBits) {
  const auto keys = util::MakeDistributedKeySet(
      util::KeyDistribution::kUniform, 20000, 64, 7);
  core::CgrxConfig plain_cfg;
  core::CgrxIndex64 plain(plain_cfg);
  plain.Build(std::vector<std::uint64_t>(keys));
  core::CgrxConfig filtered_cfg;
  filtered_cfg.miss_filter_bits_per_key = 8.0;
  core::CgrxIndex64 filtered(filtered_cfg);
  filtered.Build(std::vector<std::uint64_t>(keys));
  const auto delta =
      filtered.MemoryFootprintBytes() - plain.MemoryFootprintBytes();
  EXPECT_NEAR(static_cast<double>(delta), 20000.0, 600.0);  // ~1 B/key.
}

TEST(CgrxMissFilter, SurvivesRebuildUpdates) {
  core::CgrxConfig config;
  config.miss_filter_bits_per_key = 10.0;
  core::CgrxIndex64 index(config);
  index.Build(std::vector<std::uint64_t>{10, 20, 30});
  index.InsertBatch({15, 25}, {3, 4});
  EXPECT_EQ(index.PointLookup(15).match_count, 1u);
  EXPECT_EQ(index.PointLookup(25).match_count, 1u);
  index.EraseBatch({20});
  EXPECT_TRUE(index.PointLookup(20).IsMiss());
  EXPECT_EQ(index.PointLookup(10).match_count, 1u);
}

}  // namespace
}  // namespace cgrx
