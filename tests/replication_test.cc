// Replication suite (src/replication + the v3 wire verbs): WAL
// segment enumeration and retention at the storage layer, the
// primary-side WalShipper's committed-prefix collection, the
// changefeed subscription API over the wire, and the headline
// follower story -- a replica bootstrapped from empty catching up to
// a million-entry primary, surviving a mid-tail restart with exact
// epoch accounting, serving sessioned reads at an imported write
// floor, and promoting to a standalone primary. Part of the TSan
// suite.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include <gtest/gtest.h>

#include "src/api/factory.h"
#include "src/api/index.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/net/wire.h"
#include "src/replication/changefeed.h"
#include "src/replication/wal_shipper.h"
#include "src/storage/durable_service.h"
#include "src/storage/store.h"

namespace cgrx {
namespace {

using ::cgrx::api::IndexPtr;
using ::cgrx::api::MakeIndex;
using ::cgrx::net::Client;
using ::cgrx::net::Server;
using ::cgrx::net::Status;
using ::cgrx::replication::Change;
using ::cgrx::replication::ChangeBatch;
using ::cgrx::replication::HistoryTruncatedError;
using ::cgrx::replication::WalShipper;
using ::cgrx::storage::DurableIndexService;
using ::cgrx::storage::WalSegment;

// The acceptance test loads a million entries; under TSan every
// instrumented byte costs ~10x, so the same topology runs at a
// reduced scale (the epoch accounting and restart logic is scale-
// independent).
#if defined(__SANITIZE_THREAD__)
constexpr bool kTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTsan = true;
#else
constexpr bool kTsan = false;
#endif
#else
constexpr bool kTsan = false;
#endif

std::filesystem::path ScratchDir(const std::string& tag) {
  static int counter = 0;
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) /
      ("cgrx_repl_" + tag + "_" + std::to_string(::getpid()) + "_" +
       std::to_string(counter++));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Polls `done` every 10 ms until it holds or `timeout` elapses.
bool WaitUntil(const std::function<bool()>& done,
               std::chrono::milliseconds timeout =
                   std::chrono::milliseconds(kTsan ? 120'000 : 30'000)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!done()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return true;
}

/// Submits `waves` consecutive update waves of `keys_per_wave` fresh
/// keys each through `client` and returns every key written.
std::vector<std::uint64_t> LoadWaves(Client* client, const std::string& name,
                                     int waves, std::size_t keys_per_wave,
                                     std::uint64_t first_key = 1) {
  std::vector<std::uint64_t> all;
  std::uint64_t next = first_key;
  for (int wave = 0; wave < waves; ++wave) {
    std::vector<std::uint64_t> keys(keys_per_wave);
    std::vector<std::uint32_t> rows(keys_per_wave);
    for (std::size_t i = 0; i < keys_per_wave; ++i) {
      keys[i] = next;
      rows[i] = static_cast<std::uint32_t>(next % 1000);
      ++next;
    }
    const Client::UpdateReply reply = client->Update(name, keys, rows, {});
    EXPECT_TRUE(reply.ok()) << reply.message;
    all.insert(all.end(), keys.begin(), keys.end());
  }
  return all;
}

// --- Storage layer --------------------------------------------------

TEST(WalSegmentsTest, EnumerationTracksCheckpointRotation) {
  const std::filesystem::path dir = ScratchDir("segments");
  IndexPtr<std::uint64_t> index = MakeIndex<std::uint64_t>("btree");
  index->Build({});
  auto durable = DurableIndexService<std::uint64_t>::Create(dir, index);

  // Fresh store: one live segment named after the snapshot epoch.
  std::vector<WalSegment> segments = durable.store().Segments();
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].start_epoch, 0u);
  EXPECT_EQ(segments[0].end_epoch, 0u);
  EXPECT_TRUE(segments[0].live);
  EXPECT_EQ(durable.store().committed_wal_bytes(),
            segments[0].bytes);  // Header only, all of it committed.

  durable.SubmitUpdate({1, 2, 3}, {1, 2, 3}, {}).get();
  durable.SubmitUpdate({4, 5}, {4, 5}, {}).get();
  const std::uint64_t committed = durable.store().committed_wal_bytes();
  segments = durable.store().Segments();
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].bytes, committed);

  // Checkpoint at epoch 2 without retention: the old segment is swept
  // and a fresh live one named wal-2 takes over.
  ASSERT_EQ(durable.Checkpoint().get(), 2u);
  segments = durable.store().Segments();
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].start_epoch, 2u);
  EXPECT_TRUE(segments[0].live);
  durable.Close();
}

TEST(WalSegmentsTest, RetentionKeepsSupersededSegmentsFetchable) {
  const std::filesystem::path dir = ScratchDir("retention");
  IndexPtr<std::uint64_t> index = MakeIndex<std::uint64_t>("btree");
  index->Build({});
  typename storage::IndexStore<std::uint64_t>::Options store_options;
  store_options.retain_wal_epochs = 100;
  auto durable = DurableIndexService<std::uint64_t>::Create(
      dir, index, {}, store_options);

  durable.SubmitUpdate({1, 2}, {1, 2}, {}).get();
  ASSERT_EQ(durable.Checkpoint().get(), 1u);
  durable.SubmitUpdate({3, 4}, {3, 4}, {}).get();
  ASSERT_EQ(durable.Checkpoint().get(), 2u);

  // Both superseded segments are within the retention horizon: the
  // full history (0, head] stays on disk, oldest first.
  const std::vector<WalSegment> segments = durable.store().Segments();
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_EQ(segments[0].start_epoch, 0u);
  EXPECT_EQ(segments[0].end_epoch, 1u);
  EXPECT_FALSE(segments[0].live);
  EXPECT_EQ(segments[1].start_epoch, 1u);
  EXPECT_EQ(segments[1].end_epoch, 2u);
  EXPECT_EQ(segments[2].start_epoch, 2u);
  EXPECT_TRUE(segments[2].live);

  // A shipper can still collect from epoch 0 across the rotation.
  const ChangeBatch batch = WalShipper(dir).Collect(0, durable.epoch());
  ASSERT_EQ(batch.changes.size(), 2u);
  EXPECT_EQ(batch.changes[0].epoch, 1u);
  EXPECT_EQ(batch.changes[1].epoch, 2u);
  durable.Close();
}

TEST(WalShipperTest, CollectsExactCommittedRunWithLimits) {
  const std::filesystem::path dir = ScratchDir("shipper");
  IndexPtr<std::uint64_t> index = MakeIndex<std::uint64_t>("btree");
  index->Build({});
  auto durable = DurableIndexService<std::uint64_t>::Create(dir, index);
  durable.SubmitUpdate({10, 11}, {1, 2}, {}).get();
  durable.SubmitUpdate({12}, {3}, {}).get();
  durable.SubmitUpdate({}, {}, {10}).get();

  const WalShipper shipper(dir);
  ChangeBatch batch = shipper.Collect(0, durable.epoch());
  ASSERT_EQ(batch.changes.size(), 3u);
  EXPECT_EQ(batch.changes[0].epoch, 1u);
  EXPECT_EQ(batch.changes[0].insert_keys, (std::vector<std::uint64_t>{10, 11}));
  EXPECT_EQ(batch.changes[0].insert_rows, (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(batch.changes[2].epoch, 3u);
  EXPECT_EQ(batch.changes[2].erase_keys, (std::vector<std::uint64_t>{10}));

  // Mid-stream cursor and a wave cap both shorten the run, never gap
  // it.
  batch = shipper.Collect(1, durable.epoch());
  ASSERT_EQ(batch.changes.size(), 2u);
  EXPECT_EQ(batch.changes[0].epoch, 2u);
  WalShipper::Limits limits;
  limits.max_waves = 1;
  batch = shipper.Collect(0, durable.epoch(), limits);
  ASSERT_EQ(batch.changes.size(), 1u);
  EXPECT_EQ(batch.changes[0].epoch, 1u);

  // Nothing above the committed bound is ever shipped, even though the
  // live segment holds those bytes.
  batch = shipper.Collect(0, 1);
  ASSERT_EQ(batch.changes.size(), 1u);
  durable.Close();
}

TEST(WalShipperTest, TruncatedHistoryIsAnExplicitError) {
  const std::filesystem::path dir = ScratchDir("truncated");
  IndexPtr<std::uint64_t> index = MakeIndex<std::uint64_t>("btree");
  index->Build({});
  auto durable = DurableIndexService<std::uint64_t>::Create(dir, index);
  durable.SubmitUpdate({1}, {1}, {}).get();
  // No retention: the checkpoint sweeps wal-0, so a cursor at 0 has no
  // segment to resume from.
  ASSERT_EQ(durable.Checkpoint().get(), 1u);
  EXPECT_THROW(WalShipper(dir).Collect(0, durable.epoch()),
               HistoryTruncatedError);
  // At or past the oldest retained start, collection still works.
  EXPECT_TRUE(WalShipper(dir).Collect(1, durable.epoch()).changes.empty());
  durable.Close();
}

// --- Wire-level changefeed ------------------------------------------

TEST(ChangefeedTest, FetchAndSubscribeStreamCommittedWaves) {
  Server::Options options;
  options.root = ScratchDir("feed");
  Server server(options);
  Client client("localhost", server.port());
  ASSERT_TRUE(client.OpenIndex("p", "btree").ok());
  LoadWaves(&client, "p", 5, 8);

  // Immediate range fetch: exact consecutive run, head echoed.
  Client::ChangesReply fetched = client.FetchWalRange("p", 0, 0, 0);
  ASSERT_TRUE(fetched.ok()) << fetched.message;
  EXPECT_EQ(fetched.head_epoch, 5u);
  ASSERT_EQ(fetched.changes.size(), 5u);
  for (std::size_t i = 0; i < fetched.changes.size(); ++i) {
    EXPECT_EQ(fetched.changes[i].epoch, i + 1);
    EXPECT_EQ(fetched.changes[i].insert_keys.size(), 8u);
  }
  // Bounded range and cursor.
  fetched = client.FetchWalRange("p", 2, 4, 0);
  ASSERT_TRUE(fetched.ok());
  ASSERT_EQ(fetched.changes.size(), 2u);
  EXPECT_EQ(fetched.changes[0].epoch, 3u);
  EXPECT_EQ(fetched.changes[1].epoch, 4u);
  EXPECT_EQ(fetched.head_epoch, 5u);  // Live head, not the cap.

  // A caught-up long poll waits, then answers empty on timeout.
  const auto before = std::chrono::steady_clock::now();
  const Client::ChangesReply idle =
      client.SubscribeWal("p", 5, 0, std::chrono::milliseconds(150));
  ASSERT_TRUE(idle.ok()) << idle.message;
  EXPECT_TRUE(idle.changes.empty());
  EXPECT_EQ(idle.head_epoch, 5u);
  EXPECT_GE(std::chrono::steady_clock::now() - before,
            std::chrono::milliseconds(100));

  // A long poll parked on the head is released by the next commit.
  std::thread writer([&server] {
    Client late("localhost", server.port());
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_TRUE(late.Update("p", {900}, {9}, {}).ok());
  });
  const Client::ChangesReply woken =
      client.SubscribeWal("p", 5, 0, std::chrono::milliseconds(10'000));
  writer.join();
  ASSERT_TRUE(woken.ok()) << woken.message;
  ASSERT_EQ(woken.changes.size(), 1u);
  EXPECT_EQ(woken.changes[0].epoch, 6u);
  EXPECT_EQ(woken.changes[0].insert_keys, (std::vector<std::uint64_t>{900}));

  // The subscription loop delivers every wave in epoch order and stops
  // when the callback unsubscribes.
  std::vector<std::uint64_t> seen;
  const std::uint64_t last = client.SubscribeChanges(
      "p", 0,
      [&seen](const Change& change) {
        seen.push_back(change.epoch);
        return change.epoch < 6;
      },
      std::chrono::milliseconds(100));
  EXPECT_EQ(last, 6u);
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6}));
}

TEST(ChangefeedTest, TruncatedHistoryAnswersFailedPrecondition) {
  Server::Options options;
  options.root = ScratchDir("feedtrunc");
  Server server(options);  // retain_wal_epochs = 0: eager sweep.
  Client client("localhost", server.port());
  ASSERT_TRUE(client.OpenIndex("p", "btree").ok());
  LoadWaves(&client, "p", 2, 4);
  ASSERT_TRUE(client.Checkpoint("p").ok());

  const Client::ChangesReply reply = client.FetchWalRange("p", 0, 0, 0);
  EXPECT_EQ(reply.status, Status::kFailedPrecondition);
  // The status verb names the surviving oldest epoch so a consumer can
  // tell how far back it may still resume.
  const Client::ReplicationStatusReply status = client.ReplicationStatus("p");
  ASSERT_TRUE(status.ok()) << status.message;
  EXPECT_FALSE(status.replica);
  EXPECT_EQ(status.backend, "btree");
  EXPECT_EQ(status.oldest_epoch, 2u);
  ASSERT_EQ(status.segments.size(), 1u);
  EXPECT_EQ(status.segments[0].start_epoch, 2u);
}

// --- Follower lifecycle ---------------------------------------------

TEST(ReplicationTest, FollowerCatchesUpFromEmptyAndSurvivesRestart) {
  // The headline: a primary loaded with a million entries, a follower
  // bootstrapped from nothing over the wire, killed mid-tail, and
  // restarted -- converging to exact epoch and entry parity, then
  // serving a sessioned read at an imported write floor.
  const int kWaves = kTsan ? 20 : 100;
  const std::size_t kKeysPerWave = kTsan ? 1'000 : 10'000;

  Server::Options primary_options;
  primary_options.root = ScratchDir("primary");
  primary_options.retain_wal_epochs = 1'000'000;  // Keep full history.
  Server primary(primary_options);
  Client feed("localhost", primary.port());
  ASSERT_TRUE(feed.OpenIndex("p", "btree").ok());
  const std::vector<std::uint64_t> keys =
      LoadWaves(&feed, "p", kWaves, kKeysPerWave);
  ASSERT_EQ(keys.size(), static_cast<std::size_t>(kWaves) * kKeysPerWave);

  Server::Options follower_options;
  follower_options.root = ScratchDir("follower");
  Server follower(follower_options);
  Client reader("localhost", follower.port());
  const std::string spec =
      "replica:127.0.0.1:" + std::to_string(primary.port()) + "/p";
  ASSERT_TRUE(reader.OpenIndex("f", spec).ok());

  // Kill mid-tail: wait until the replica has applied SOME prefix but
  // (likely) not all of it, then close and reopen. Recovery must
  // resume from the durable epoch -- never re-apply, never skip.
  ASSERT_TRUE(WaitUntil([&reader] {
    const Client::ReplicationStatusReply s = reader.ReplicationStatus("f");
    return s.ok() && s.epoch >= 1;
  }));
  const Client::EpochReply closed = reader.CloseIndex("f");
  ASSERT_TRUE(closed.ok()) << closed.message;
  const std::uint64_t epoch_at_kill = closed.epoch;
  ASSERT_TRUE(reader.OpenIndex("f", spec).ok());
  {
    const Client::ReplicationStatusReply resumed =
        reader.ReplicationStatus("f");
    ASSERT_TRUE(resumed.ok()) << resumed.message;
    EXPECT_GE(resumed.epoch, epoch_at_kill);  // Nothing lost...
  }

  // ...and convergence to exact parity: every epoch applied once.
  ASSERT_TRUE(WaitUntil([&reader, kWaves] {
    const Client::ReplicationStatusReply s = reader.ReplicationStatus("f");
    return s.ok() && s.epoch == static_cast<std::uint64_t>(kWaves);
  })) << "replica stalled: " << reader.ReplicationStatus("f").message;
  const Client::StatsReply stats = reader.Stats("f");
  ASSERT_TRUE(stats.ok()) << stats.message;
  EXPECT_EQ(stats.epoch, static_cast<std::uint64_t>(kWaves));
  EXPECT_EQ(stats.entries, keys.size());
  const Client::ReplicationStatusReply status = reader.ReplicationStatus("f");
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE(status.replica);
  EXPECT_EQ(status.backend, "btree");
  EXPECT_EQ(status.primary_epoch, static_cast<std::uint64_t>(kWaves));

  // Spot-check replicated answers against the primary's.
  const std::vector<std::uint64_t> probes = {keys.front(),
                                             keys[keys.size() / 2],
                                             keys.back(), 0xDEADBEEFULL};
  const Client::LookupReply from_replica = reader.PointLookup("f", probes);
  const Client::LookupReply from_primary = feed.PointLookup("p", probes);
  ASSERT_TRUE(from_replica.ok());
  ASSERT_TRUE(from_primary.ok());
  ASSERT_EQ(from_replica.results.size(), probes.size());
  for (std::size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(from_replica.results[i], from_primary.results[i]);
  }

  // Cross-node read-your-writes: acknowledge a write on the primary,
  // import its epoch as a session floor on the follower, and the
  // sessioned read observes it (the follower holds the read until the
  // epoch has applied).
  const std::uint64_t fresh_key = keys.back() + 424242;  // Never loaded.
  const Client::UpdateReply write = feed.Update("p", {fresh_key}, {7}, {});
  ASSERT_TRUE(write.ok()) << write.message;
  const Client::SessionReply session =
      reader.CreateSession({{"f", write.epoch}});
  ASSERT_TRUE(session.ok()) << session.message;
  const Client::LookupReply ryw = reader.PointLookup("f", {fresh_key});
  ASSERT_TRUE(ryw.ok()) << ryw.message;
  ASSERT_EQ(ryw.results.size(), 1u);
  EXPECT_EQ(ryw.results[0].match_count, 1u);
  EXPECT_EQ(ryw.results[0].row_id_sum, 7u);

  // The standby is read-only; writers are pointed at the primary.
  EXPECT_EQ(reader.Update("f", {1}, {1}, {}).status,
            Status::kFailedPrecondition);
}

TEST(ReplicationTest, ReplicaCheckpointsAndPromotesToPrimary) {
  Server::Options primary_options;
  primary_options.root = ScratchDir("promo_primary");
  primary_options.retain_wal_epochs = 1'000'000;
  Server primary(primary_options);
  Client feed("localhost", primary.port());
  ASSERT_TRUE(feed.OpenIndex("p", "btree").ok());
  LoadWaves(&feed, "p", 3, 16);

  Server::Options follower_options;
  follower_options.root = ScratchDir("promo_follower");
  Server follower(follower_options);
  Client reader("localhost", follower.port());
  const std::string spec =
      "replica:127.0.0.1:" + std::to_string(primary.port()) + "/p";
  ASSERT_TRUE(reader.OpenIndex("f", spec).ok());
  ASSERT_TRUE(WaitUntil([&reader] {
    const Client::ReplicationStatusReply s = reader.ReplicationStatus("f");
    return s.ok() && s.epoch == 3;
  }));

  // A replica checkpoints like a primary (snapshot + WAL rotation),
  // bounding its own restart replay.
  const Client::EpochReply checkpointed = reader.Checkpoint("f");
  ASSERT_TRUE(checkpointed.ok()) << checkpointed.message;
  EXPECT_EQ(checkpointed.epoch, 3u);

  // Promotion: reopen the SAME directory without the replica: prefix.
  // Plain recovery of its snapshot + WAL turns the standby into a
  // writable primary at the epoch it had applied.
  ASSERT_TRUE(reader.CloseIndex("f").ok());
  const Client::OpenReply promoted = reader.OpenIndex("f", "btree");
  ASSERT_TRUE(promoted.ok()) << promoted.message;
  EXPECT_EQ(promoted.epoch, 3u);
  const Client::UpdateReply write = reader.Update("f", {777}, {7}, {});
  ASSERT_TRUE(write.ok()) << write.message;
  EXPECT_EQ(write.epoch, 4u);
}

TEST(ReplicationTest, BootstrapAgainstUnreachablePrimaryIsRetryable) {
  Server::Options options;
  options.root = ScratchDir("orphan");
  Server server(options);
  Client client("localhost", server.port());
  // Port 1 refuses immediately on loopback; the open must answer
  // kUnavailable (retry once the primary exists), not wedge or crash.
  const Client::OpenReply reply =
      client.OpenIndex("f", "replica:127.0.0.1:1/p");
  EXPECT_EQ(reply.status, Status::kUnavailable);
  // Malformed specs are caught before any networking.
  EXPECT_EQ(client.OpenIndex("g", "replica:nohost").status,
            Status::kInvalidArgument);
  EXPECT_EQ(client.OpenIndex("h", "replica:host:99999/p").status,
            Status::kInvalidArgument);
}

}  // namespace
}  // namespace cgrx
