// Cross-index integration tests: every index built over the same
// workload must return identical lookup aggregates; updatable indexes
// must agree after identical update waves; plus end-to-end failure
// injection (empty inputs, duplicate floods, adversarial batches).
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/baselines/btree.h"
#include "src/baselines/full_scan.h"
#include "src/baselines/hash_table.h"
#include "src/baselines/rtscan.h"
#include "src/baselines/sorted_array.h"
#include "src/core/cgrx_index.h"
#include "src/core/cgrxu_index.h"
#include "src/rx/rx_index.h"
#include "src/util/rng.h"
#include "src/util/workloads.h"

namespace cgrx {
namespace {

using ::cgrx::core::KeyRange;
using ::cgrx::core::LookupResult;
using ::cgrx::util::KeyDistribution;
using ::cgrx::util::MakeDistributedKeySet;
using ::cgrx::util::Rng;

class CrossIndexAgreementTest
    : public ::testing::TestWithParam<KeyDistribution> {};

TEST_P(CrossIndexAgreementTest, AllIndexesAgreeOnPointLookups) {
  const auto keys = MakeDistributedKeySet(GetParam(), 4000, 32, 100);
  std::vector<std::uint32_t> keys32(keys.begin(), keys.end());

  core::CgrxIndex32 cgrx_opt;
  cgrx_opt.Build(std::vector<std::uint32_t>(keys32));
  core::CgrxConfig naive_cfg;
  naive_cfg.representation = core::Representation::kNaive;
  core::CgrxIndex32 cgrx_naive(naive_cfg);
  cgrx_naive.Build(std::vector<std::uint32_t>(keys32));
  core::CgrxuIndex32 cgrxu;
  cgrxu.Build(std::vector<std::uint32_t>(keys32));
  rx::RxIndex32 rx_index;
  rx_index.Build(std::vector<std::uint32_t>(keys32));
  baselines::SortedArray<std::uint32_t> sa;
  sa.Build(std::vector<std::uint32_t>(keys32));
  baselines::BPlusTree32 bt;
  bt.Build(std::vector<std::uint32_t>(keys32));
  baselines::HashTable<std::uint32_t> ht;
  ht.Build(std::vector<std::uint32_t>(keys32));
  baselines::FullScan<std::uint32_t> fs;
  fs.Build(std::vector<std::uint32_t>(keys32));

  Rng rng(101);
  for (int i = 0; i < 1500; ++i) {
    const std::uint32_t k =
        i % 2 == 0 ? keys32[rng.Below(keys32.size())]
                   : static_cast<std::uint32_t>(rng());
    const LookupResult expected = sa.PointLookup(k);
    ASSERT_EQ(cgrx_opt.PointLookup(k), expected) << "cgrx-opt key " << k;
    ASSERT_EQ(cgrx_naive.PointLookup(k), expected) << "cgrx-naive key " << k;
    ASSERT_EQ(cgrxu.PointLookup(k), expected) << "cgrxu key " << k;
    ASSERT_EQ(rx_index.PointLookup(k), expected) << "rx key " << k;
    ASSERT_EQ(bt.PointLookup(k), expected) << "b+ key " << k;
    ASSERT_EQ(ht.PointLookup(k), expected) << "ht key " << k;
    ASSERT_EQ(fs.PointLookup(k), expected) << "fullscan key " << k;
  }
}

TEST_P(CrossIndexAgreementTest, RangeCapableIndexesAgreeOnRanges) {
  const auto keys = MakeDistributedKeySet(GetParam(), 3000, 32, 102);
  std::vector<std::uint32_t> keys32(keys.begin(), keys.end());

  core::CgrxIndex32 cgrx_index;
  cgrx_index.Build(std::vector<std::uint32_t>(keys32));
  core::CgrxuIndex32 cgrxu;
  cgrxu.Build(std::vector<std::uint32_t>(keys32));
  rx::RxIndex32 rx_index;
  rx_index.Build(std::vector<std::uint32_t>(keys32));
  baselines::SortedArray<std::uint32_t> sa;
  sa.Build(std::vector<std::uint32_t>(keys32));
  baselines::BPlusTree32 bt;
  bt.Build(std::vector<std::uint32_t>(keys32));
  // RTScan sweeps the whole key-distance of a range in fixed segments
  // (it is a dense-scan design); on sparse distributions that is
  // millions of rays per query, so it only participates on the dense
  // workload -- exactly the setting the paper evaluates it in (Fig. 14).
  const bool with_rtscan = GetParam() == KeyDistribution::kDense;
  baselines::RtScan<std::uint32_t> rtscan;
  if (with_rtscan) rtscan.Build(std::vector<std::uint32_t>(keys32));
  baselines::FullScan<std::uint32_t> fs;
  fs.Build(std::vector<std::uint32_t>(keys32));

  auto sorted = keys32;
  std::sort(sorted.begin(), sorted.end());
  Rng rng(103);
  for (int i = 0; i < 120; ++i) {
    const std::size_t a = rng.Below(sorted.size());
    const std::size_t b = std::min(sorted.size() - 1, a + rng.Below(300));
    const std::uint32_t lo = sorted[a];
    const std::uint32_t hi = sorted[b];
    const LookupResult expected = sa.RangeLookup(lo, hi);
    ASSERT_EQ(cgrx_index.RangeLookup(lo, hi), expected) << "cgrx";
    ASSERT_EQ(cgrxu.RangeLookup(lo, hi), expected) << "cgrxu";
    ASSERT_EQ(rx_index.RangeLookup(lo, hi), expected) << "rx";
    ASSERT_EQ(bt.RangeLookup(lo, hi), expected) << "b+";
    if (with_rtscan) {
      ASSERT_EQ(rtscan.RangeLookup(lo, hi), expected) << "rtscan";
    }
    ASSERT_EQ(fs.RangeLookup(lo, hi), expected) << "fullscan";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, CrossIndexAgreementTest,
    ::testing::Values(KeyDistribution::kDense, KeyDistribution::kUniform,
                      KeyDistribution::kUniformity50,
                      KeyDistribution::kClustered256,
                      KeyDistribution::kDuplicateHeavy,
                      KeyDistribution::kSequentialBlocks),
    [](const auto& info) {
      std::string d = util::ToString(info.param);
      for (char& c : d) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return d;
    });

TEST(CrossIndexUpdates, UpdatableIndexesAgreeAfterWaves) {
  // Mirror of the paper's update experiment at test scale: bulk load,
  // then interleaved insert/delete waves; cgRXu, B+, HT and rebuilt
  // cgRX must agree on every probe after every wave.
  const auto keys = MakeDistributedKeySet(KeyDistribution::kUniform, 3000,
                                          32, 104);
  std::vector<std::uint32_t> keys32(keys.begin(), keys.end());

  core::CgrxuIndex32 cgrxu;
  cgrxu.Build(std::vector<std::uint32_t>(keys32));
  core::CgrxIndex32 cgrx_rebuild;
  cgrx_rebuild.Build(std::vector<std::uint32_t>(keys32));
  baselines::BPlusTree32 bt;
  bt.Build(std::vector<std::uint32_t>(keys32));
  baselines::HashTable<std::uint32_t> ht(0.4);
  ht.Build(std::vector<std::uint32_t>(keys32));

  Rng rng(105);
  std::vector<std::uint32_t> live(keys32);
  std::uint32_t next_row = 3000;
  for (int wave = 0; wave < 4; ++wave) {
    std::vector<std::uint32_t> ins;
    std::vector<std::uint32_t> rows;
    for (int i = 0; i < 400; ++i) {
      std::uint32_t k = static_cast<std::uint32_t>(rng());
      ins.push_back(k);
      rows.push_back(next_row++);
      live.push_back(k);
    }
    cgrxu.InsertBatch(ins, rows);
    cgrx_rebuild.InsertBatch(ins, rows);
    bt.InsertBatch(ins, rows);
    ht.InsertBatch(ins, rows);

    std::vector<std::uint32_t> dels;
    for (int i = 0; i < 200 && !live.empty(); ++i) {
      const std::size_t pos = rng.Below(live.size());
      dels.push_back(live[pos]);
      live[pos] = live.back();
      live.pop_back();
    }
    cgrxu.EraseBatch(dels);
    cgrx_rebuild.EraseBatch(dels);
    bt.EraseBatch(dels);
    ht.EraseBatch(dels);

    for (int q = 0; q < 800; ++q) {
      const std::uint32_t k = q % 2 == 0 && !live.empty()
                                  ? live[rng.Below(live.size())]
                                  : static_cast<std::uint32_t>(rng());
      const LookupResult expected = cgrx_rebuild.PointLookup(k);
      ASSERT_EQ(cgrxu.PointLookup(k), expected)
          << "wave " << wave << " key " << k;
      ASSERT_EQ(bt.PointLookup(k), expected)
          << "wave " << wave << " key " << k;
      ASSERT_EQ(ht.PointLookup(k), expected)
          << "wave " << wave << " key " << k;
    }
    std::string error;
    ASSERT_TRUE(cgrxu.ValidateInvariants(&error)) << error;
    ASSERT_TRUE(bt.ValidateInvariants(&error)) << error;
  }
}

TEST(FailureInjection, AllIndexesSurviveEmptyBuilds) {
  core::CgrxIndex64 cgrx_index;
  cgrx_index.Build(std::vector<std::uint64_t>{});
  core::CgrxuIndex64 cgrxu;
  cgrxu.Build(std::vector<std::uint64_t>{});
  rx::RxIndex64 rx_index;
  rx_index.Build(std::vector<std::uint64_t>{});
  baselines::SortedArray<std::uint64_t> sa;
  sa.Build(std::vector<std::uint64_t>{});
  baselines::BPlusTree32 bt;
  bt.Build(std::vector<std::uint32_t>{});
  baselines::HashTable<std::uint64_t> ht;
  ht.Build(std::vector<std::uint64_t>{});
  for (const std::uint64_t k : {0ULL, 1ULL, ~0ULL}) {
    EXPECT_TRUE(cgrx_index.PointLookup(k).IsMiss());
    EXPECT_TRUE(cgrxu.PointLookup(k).IsMiss());
    EXPECT_TRUE(rx_index.PointLookup(k).IsMiss());
    EXPECT_TRUE(sa.PointLookup(k).IsMiss());
    EXPECT_TRUE(bt.PointLookup(static_cast<std::uint32_t>(k)).IsMiss());
    EXPECT_TRUE(ht.PointLookup(k).IsMiss());
  }
}

TEST(FailureInjection, DuplicateFloodAcrossIndexes) {
  // 10k copies of 4 distinct keys: stresses duplicate chains, bucket
  // spanning, hash clustering and BVH force-splitting at once.
  std::vector<std::uint32_t> keys;
  for (int i = 0; i < 10000; ++i) {
    keys.push_back(static_cast<std::uint32_t>(1000 * (i % 4)));
  }
  core::CgrxConfig cfg;
  cfg.bucket_size = 32;
  core::CgrxIndex32 cgrx_index(cfg);
  cgrx_index.Build(std::vector<std::uint32_t>(keys));
  core::CgrxuIndex32 cgrxu;
  cgrxu.Build(std::vector<std::uint32_t>(keys));
  baselines::SortedArray<std::uint32_t> sa;
  sa.Build(std::vector<std::uint32_t>(keys));
  baselines::BPlusTree32 bt;
  bt.Build(std::vector<std::uint32_t>(keys));
  for (const std::uint32_t k : {0u, 1000u, 2000u, 3000u}) {
    const LookupResult expected = sa.PointLookup(k);
    EXPECT_EQ(expected.match_count, 2500u);
    ASSERT_EQ(cgrx_index.PointLookup(k), expected);
    ASSERT_EQ(cgrxu.PointLookup(k), expected);
    ASSERT_EQ(bt.PointLookup(k), expected);
  }
  EXPECT_TRUE(cgrx_index.PointLookup(500).IsMiss());
  std::string error;
  EXPECT_TRUE(cgrxu.ValidateInvariants(&error)) << error;
}

TEST(FailureInjection, AdversarialUpdateBatches) {
  // Same key inserted and deleted many times within one batch; deletes
  // of never-present keys; inserts landing entirely in one bucket.
  core::CgrxuIndex64 cgrxu;
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 1000; ++i) keys.push_back(i * 1000);
  cgrxu.Build(std::vector<std::uint64_t>(keys));
  std::vector<std::uint64_t> ins;
  std::vector<std::uint32_t> rows;
  std::vector<std::uint64_t> dels;
  for (int i = 0; i < 500; ++i) {
    ins.push_back(500500);  // All into the same bucket.
    rows.push_back(static_cast<std::uint32_t>(i));
    if (i % 2 == 0) dels.push_back(500500);
  }
  dels.push_back(123);  // Never present.
  cgrxu.UpdateBatch(ins, rows, dels);
  // 500 inserts, 250 eliminated pairwise; 123 absent -> no-op. The
  // remaining 250 inserted instances all exist.
  EXPECT_EQ(cgrxu.PointLookup(500500).match_count, 250u);
  EXPECT_EQ(cgrxu.size(), 1000u + 250u);
  std::string error;
  EXPECT_TRUE(cgrxu.ValidateInvariants(&error)) << error;
}

TEST(FailureInjection, UnsortedInputsAreSortedInternally) {
  // All builders accept shuffled input; verify with a reversed array.
  std::vector<std::uint32_t> keys;
  for (std::uint32_t i = 0; i < 2000; ++i) keys.push_back(1999 - i);
  core::CgrxIndex32 cgrx_index;
  cgrx_index.Build(std::vector<std::uint32_t>(keys));
  // Key 1999 sits at rowID 0 (position in the *input*).
  EXPECT_EQ(cgrx_index.PointLookup(1999).row_id_sum, 0u);
  EXPECT_EQ(cgrx_index.PointLookup(0).row_id_sum, 1999u);
}

}  // namespace
}  // namespace cgrx
