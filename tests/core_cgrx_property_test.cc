// Randomized property tests for cgRX: for every combination of key
// width, representation, bucket size and key distribution, every point
// lookup, miss and range lookup must agree with a sorted-array oracle.
// Also covers the optimized-representation specifics (flipping,
// auxiliary markers, memory savings) and the rebuild-style updates.
#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/cgrx_index.h"
#include "src/util/rng.h"
#include "src/util/workloads.h"

namespace cgrx::core {
namespace {

using ::cgrx::util::KeyDistribution;
using ::cgrx::util::MakeDistributedKeySet;
using ::cgrx::util::Rng;

/// Sorted-array oracle for point and range lookups.
class Oracle {
 public:
  Oracle(const std::vector<std::uint64_t>& keys) {
    for (std::size_t i = 0; i < keys.size(); ++i) {
      entries_.emplace_back(keys[i], static_cast<std::uint32_t>(i));
    }
    std::sort(entries_.begin(), entries_.end());
  }

  LookupResult Range(std::uint64_t lo, std::uint64_t hi) const {
    LookupResult result;
    auto it = std::lower_bound(entries_.begin(), entries_.end(),
                               std::make_pair(lo, std::uint32_t{0}));
    for (; it != entries_.end() && it->first <= hi; ++it) {
      result.Accumulate(it->second);
    }
    return result;
  }

  LookupResult Point(std::uint64_t key) const { return Range(key, key); }

 private:
  std::vector<std::pair<std::uint64_t, std::uint32_t>> entries_;
};

struct Case {
  int key_bits;
  Representation representation;
  std::uint32_t bucket_size;
  KeyDistribution distribution;
};

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  std::string name = info.param.key_bits == 32 ? "u32" : "u64";
  name += info.param.representation == Representation::kNaive ? "Naive"
                                                              : "Opt";
  name += 'B';
  name += std::to_string(info.param.bucket_size);
  name += '_';
  std::string d = util::ToString(info.param.distribution);
  for (char& c : d) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  name += d;
  return name;
}

class CgrxPropertyTest : public ::testing::TestWithParam<Case> {
 protected:
  template <typename Key>
  void RunAgainstOracle() {
    const Case& c = GetParam();
    constexpr std::size_t kKeys = 6000;
    const auto keys64 =
        MakeDistributedKeySet(c.distribution, kKeys, c.key_bits, 1234);
    std::vector<Key> keys(keys64.begin(), keys64.end());
    const Oracle oracle(keys64);

    CgrxConfig config;
    config.bucket_size = c.bucket_size;
    config.representation = c.representation;
    CgrxIndex<Key> index(config);
    index.Build(keys);
    ASSERT_EQ(index.size(), kKeys);

    // Every key must be found with the exact aggregate.
    for (std::size_t i = 0; i < keys.size(); i += 7) {
      const auto expected = oracle.Point(keys64[i]);
      const auto got = index.PointLookup(keys[i]);
      ASSERT_EQ(got, expected) << "key " << keys64[i];
    }
    // Random probes (hits and misses alike).
    Rng rng(777);
    const std::uint64_t space =
        c.key_bits == 64 ? ~0ULL : ((1ULL << c.key_bits) - 1);
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t k = rng.Between(0, space);
      const auto expected = oracle.Point(k);
      const auto got = index.PointLookup(static_cast<Key>(k));
      ASSERT_EQ(got, expected) << "probe " << k;
    }
    // Random ranges, short and long.
    auto sorted = keys64;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < 300; ++i) {
      const std::size_t a = rng.Below(sorted.size());
      const std::size_t width = rng.Below(200) + 1;
      const std::uint64_t lo = sorted[a];
      const std::uint64_t hi = sorted[std::min(sorted.size() - 1, a + width)];
      const auto expected = oracle.Range(lo, hi);
      const auto got =
          index.RangeLookup(static_cast<Key>(lo), static_cast<Key>(hi));
      ASSERT_EQ(got, expected) << "range [" << lo << ", " << hi << "]";
    }
    // Ranges with non-key bounds.
    for (int i = 0; i < 300; ++i) {
      std::uint64_t lo = rng.Between(0, space);
      std::uint64_t hi = rng.Between(0, space);
      if (lo > hi) std::swap(lo, hi);
      const auto expected = oracle.Range(lo, hi);
      const auto got =
          index.RangeLookup(static_cast<Key>(lo), static_cast<Key>(hi));
      ASSERT_EQ(got, expected) << "range [" << lo << ", " << hi << "]";
    }
  }
};

TEST_P(CgrxPropertyTest, MatchesOracle) {
  if (GetParam().key_bits == 32) {
    RunAgainstOracle<std::uint32_t>();
  } else {
    RunAgainstOracle<std::uint64_t>();
  }
}

std::vector<Case> MakeCases() {
  std::vector<Case> cases;
  const std::vector<KeyDistribution> distributions = {
      KeyDistribution::kDense,          KeyDistribution::kUniform,
      KeyDistribution::kUniformity50,   KeyDistribution::kClustered16,
      KeyDistribution::kZipfGaps10,     KeyDistribution::kDuplicateHeavy,
      KeyDistribution::kMultiPlane,     KeyDistribution::kSequentialBlocks,
  };
  for (const int bits : {32, 64}) {
    for (const Representation rep :
         {Representation::kNaive, Representation::kOptimized}) {
      for (const std::uint32_t bucket : {4u, 32u, 256u}) {
        for (const KeyDistribution d : distributions) {
          cases.push_back({bits, rep, bucket, d});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CgrxPropertyTest,
                         ::testing::ValuesIn(MakeCases()), CaseName);

// ---------------------------------------------------------------------
// Optimized-representation specifics.
// ---------------------------------------------------------------------

TEST(CgrxOptimized, SavesActiveTrianglesOnSparse64BitSets) {
  // Paper Section V-A: for sparse sets the optimized representation has
  // fewer active triangles (markers become implicit) and a smaller
  // footprint.
  const auto keys = MakeDistributedKeySet(KeyDistribution::kUniform, 20000,
                                          64, 5);
  CgrxConfig naive_cfg;
  naive_cfg.bucket_size = 4;
  naive_cfg.representation = Representation::kNaive;
  CgrxIndex64 naive(naive_cfg);
  naive.Build(std::vector<std::uint64_t>(keys));

  CgrxConfig opt_cfg = naive_cfg;
  opt_cfg.representation = Representation::kOptimized;
  CgrxIndex64 optimized(opt_cfg);
  optimized.Build(std::vector<std::uint64_t>(keys));

  EXPECT_LT(optimized.ActiveTriangleCount(), naive.ActiveTriangleCount());
  EXPECT_LE(optimized.MemoryFootprintBytes(), naive.MemoryFootprintBytes());
}

TEST(CgrxOptimized, NeverFiresMoreThanFiveRays) {
  const auto keys = MakeDistributedKeySet(KeyDistribution::kUniform, 8000,
                                          64, 6);
  CgrxConfig config;
  config.bucket_size = 8;
  CgrxIndex64 index(config);
  index.Build(std::vector<std::uint64_t>(keys));
  Rng rng(8);
  int max_rays = 0;
  for (int i = 0; i < 5000; ++i) {
    int rays = 0;
    index.PointLookup(rng(), &rays);
    max_rays = std::max(max_rays, rays);
    ASSERT_LE(rays, 5);
  }
  EXPECT_GE(max_rays, 1);
}

TEST(CgrxOptimized, FlippingReducesRaysOnSparseSets) {
  const auto keys = MakeDistributedKeySet(KeyDistribution::kUniform, 8000,
                                          64, 7);
  CgrxConfig with;
  with.bucket_size = 4;
  with.enable_flipping = true;
  CgrxIndex64 flipped(with);
  flipped.Build(std::vector<std::uint64_t>(keys));

  CgrxConfig without = with;
  without.enable_flipping = false;
  CgrxIndex64 unflipped(without);
  unflipped.Build(std::vector<std::uint64_t>(keys));

  Rng rng(9);
  std::int64_t rays_with = 0;
  std::int64_t rays_without = 0;
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t k = keys[rng.Below(keys.size())];
    int r = 0;
    const auto a = flipped.PointLookup(k, &r);
    rays_with += r;
    const auto b = unflipped.PointLookup(k, &r);
    rays_without += r;
    ASSERT_EQ(a, b);  // Flipping is a pure optimization.
  }
  EXPECT_LE(rays_with, rays_without);
}

TEST(CgrxOptimized, NaiveAndOptimizedAgreeEverywhere) {
  for (const KeyDistribution d :
       {KeyDistribution::kUniform, KeyDistribution::kDuplicateHeavy,
        KeyDistribution::kClustered16}) {
    const auto keys = MakeDistributedKeySet(d, 5000, 64, 11);
    CgrxConfig naive_cfg;
    naive_cfg.bucket_size = 16;
    naive_cfg.representation = Representation::kNaive;
    CgrxIndex64 naive(naive_cfg);
    naive.Build(std::vector<std::uint64_t>(keys));
    CgrxConfig opt_cfg = naive_cfg;
    opt_cfg.representation = Representation::kOptimized;
    CgrxIndex64 optimized(opt_cfg);
    optimized.Build(std::vector<std::uint64_t>(keys));
    Rng rng(12);
    for (int i = 0; i < 3000; ++i) {
      const std::uint64_t k =
          i % 2 == 0 ? keys[rng.Below(keys.size())] : rng();
      ASSERT_EQ(naive.PointLookup(k), optimized.PointLookup(k))
          << util::ToString(d) << " key " << k;
    }
  }
}

// ---------------------------------------------------------------------
// Bucket search variants.
// ---------------------------------------------------------------------

class BucketSearchVariantTest
    : public ::testing::TestWithParam<std::tuple<BucketLayout,
                                                 BucketSearchAlgo>> {};

TEST_P(BucketSearchVariantTest, AllVariantsAgree) {
  const auto [layout, algo] = GetParam();
  const auto keys = MakeDistributedKeySet(KeyDistribution::kUniformity50,
                                          4000, 64, 13);
  const Oracle oracle(keys);
  CgrxConfig config;
  config.bucket_size = 64;
  config.bucket_layout = layout;
  config.bucket_search = algo;
  CgrxIndex64 index(config);
  index.Build(std::vector<std::uint64_t>(keys));
  Rng rng(14);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t k = i % 2 == 0 ? keys[rng.Below(keys.size())] : rng();
    ASSERT_EQ(index.PointLookup(k), oracle.Point(k));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, BucketSearchVariantTest,
    ::testing::Combine(::testing::Values(BucketLayout::kRow,
                                         BucketLayout::kColumn),
                       ::testing::Values(BucketSearchAlgo::kBinary,
                                         BucketSearchAlgo::kLinear)),
    [](const auto& info) {
      std::string name =
          std::get<0>(info.param) == BucketLayout::kRow ? "Row" : "Column";
      name += std::get<1>(info.param) == BucketSearchAlgo::kBinary
                  ? "Binary"
                  : "Linear";
      return name;
    });

// ---------------------------------------------------------------------
// Rebuild-style updates.
// ---------------------------------------------------------------------

TEST(CgrxUpdates, InsertBatchMergesAndStaysCorrect) {
  auto keys = MakeDistributedKeySet(KeyDistribution::kUniformity50, 3000, 64,
                                    20);
  CgrxIndex64 index;
  index.Build(std::vector<std::uint64_t>(keys));
  // Insert 1000 new keys with fresh rowIDs.
  Rng rng(21);
  std::vector<std::uint64_t> extra;
  std::vector<std::uint32_t> extra_rows;
  for (int i = 0; i < 1000; ++i) {
    extra.push_back(rng());
    extra_rows.push_back(static_cast<std::uint32_t>(3000 + i));
  }
  index.InsertBatch(extra, extra_rows);
  EXPECT_EQ(index.size(), 4000u);
  for (std::size_t i = 0; i < extra.size(); i += 17) {
    const auto r = index.PointLookup(extra[i]);
    ASSERT_GE(r.match_count, 1u) << extra[i];
  }
  for (std::size_t i = 0; i < keys.size(); i += 17) {
    ASSERT_GE(index.PointLookup(keys[i]).match_count, 1u);
  }
}

TEST(CgrxUpdates, EraseBatchRemovesOneInstancePerKey) {
  std::vector<std::uint64_t> keys = {5, 5, 5, 9, 12, 12, 40};
  CgrxConfig config;
  config.bucket_size = 2;
  config.mapping_override = util::KeyMapping::Example();
  CgrxIndex64 index(config);
  index.Build(std::vector<std::uint64_t>(keys));
  index.EraseBatch({5, 12, 100});
  EXPECT_EQ(index.size(), 5u);
  EXPECT_EQ(index.PointLookup(5).match_count, 2u);
  EXPECT_EQ(index.PointLookup(12).match_count, 1u);
  EXPECT_EQ(index.PointLookup(9).match_count, 1u);
  EXPECT_EQ(index.PointLookup(40).match_count, 1u);
}

// ---------------------------------------------------------------------
// Degenerate inputs.
// ---------------------------------------------------------------------

TEST(CgrxEdgeCases, EmptyIndexMissesEverything) {
  CgrxIndex64 index;
  index.Build(std::vector<std::uint64_t>{});
  EXPECT_TRUE(index.PointLookup(42).IsMiss());
  EXPECT_TRUE(index.RangeLookup(0, ~0ULL).IsMiss());
  EXPECT_EQ(index.size(), 0u);
}

TEST(CgrxEdgeCases, SingleKey) {
  for (const Representation rep :
       {Representation::kNaive, Representation::kOptimized}) {
    CgrxConfig config;
    config.representation = rep;
    CgrxIndex64 index(config);
    index.Build(std::vector<std::uint64_t>{123456789});
    EXPECT_EQ(index.PointLookup(123456789).match_count, 1u);
    EXPECT_TRUE(index.PointLookup(123456788).IsMiss());
    EXPECT_TRUE(index.PointLookup(123456790).IsMiss());
    EXPECT_EQ(index.RangeLookup(0, ~0ULL).match_count, 1u);
  }
}

TEST(CgrxEdgeCases, AllKeysIdentical) {
  for (const Representation rep :
       {Representation::kNaive, Representation::kOptimized}) {
    CgrxConfig config;
    config.bucket_size = 4;
    config.representation = rep;
    CgrxIndex64 index(config);
    index.Build(std::vector<std::uint64_t>(100, 777));
    const auto r = index.PointLookup(777);
    EXPECT_EQ(r.match_count, 100u);
    EXPECT_EQ(r.row_id_sum, 99u * 100u / 2u);
    EXPECT_TRUE(index.PointLookup(776).IsMiss());
    EXPECT_TRUE(index.PointLookup(778).IsMiss());
  }
}

TEST(CgrxEdgeCases, BucketSizeOne) {
  // Degenerates to the fine-granular case: every key is a rep.
  const auto keys = MakeDistributedKeySet(KeyDistribution::kUniform, 500, 64,
                                          30);
  const Oracle oracle(keys);
  CgrxConfig config;
  config.bucket_size = 1;
  CgrxIndex64 index(config);
  index.Build(std::vector<std::uint64_t>(keys));
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t k = i % 2 == 0 ? keys[rng.Below(keys.size())] : rng();
    ASSERT_EQ(index.PointLookup(k), oracle.Point(k));
  }
}

TEST(CgrxEdgeCases, BucketLargerThanKeySet) {
  const auto keys = MakeDistributedKeySet(KeyDistribution::kUniform, 100, 64,
                                          32);
  const Oracle oracle(keys);
  CgrxConfig config;
  config.bucket_size = 4096;
  CgrxIndex64 index(config);
  index.Build(std::vector<std::uint64_t>(keys));
  EXPECT_EQ(index.num_buckets(), 1u);
  for (const std::uint64_t k : keys) {
    ASSERT_EQ(index.PointLookup(k), oracle.Point(k));
  }
}

TEST(CgrxEdgeCases, ExtremeKeysAtDomainBounds) {
  std::vector<std::uint64_t> keys = {0, 1, ~0ULL - 1, ~0ULL};
  CgrxConfig config;
  config.bucket_size = 2;
  CgrxIndex64 index(config);
  index.Build(std::vector<std::uint64_t>(keys));
  for (const std::uint64_t k : keys) {
    EXPECT_EQ(index.PointLookup(k).match_count, 1u) << k;
  }
  EXPECT_TRUE(index.PointLookup(2).IsMiss());
  EXPECT_TRUE(index.PointLookup(~0ULL - 2).IsMiss());
  EXPECT_EQ(index.RangeLookup(0, ~0ULL).match_count, 4u);
}

TEST(CgrxEdgeCases, UnscaledMappingStaysCorrect) {
  // Figure 9 is about performance, not correctness: the unscaled
  // mapping must return identical results.
  const auto keys = MakeDistributedKeySet(KeyDistribution::kUniform, 3000,
                                          64, 33);
  const Oracle oracle(keys);
  CgrxConfig config;
  config.scaled_mapping = false;
  CgrxIndex64 index(config);
  index.Build(std::vector<std::uint64_t>(keys));
  Rng rng(34);
  for (int i = 0; i < 1500; ++i) {
    const std::uint64_t k = i % 2 == 0 ? keys[rng.Below(keys.size())] : rng();
    ASSERT_EQ(index.PointLookup(k), oracle.Point(k));
  }
}

TEST(CgrxEdgeCases, BatchApisMatchScalarApis) {
  const auto keys = MakeDistributedKeySet(KeyDistribution::kUniformity50,
                                          2000, 32, 35);
  std::vector<std::uint32_t> keys32(keys.begin(), keys.end());
  CgrxIndex32 index;
  index.Build(std::vector<std::uint32_t>(keys32));
  std::vector<std::uint32_t> batch;
  Rng rng(36);
  for (int i = 0; i < 1000; ++i) {
    batch.push_back(i % 2 == 0 ? keys32[rng.Below(keys32.size())]
                               : static_cast<std::uint32_t>(rng()));
  }
  std::vector<LookupResult> results(batch.size());
  index.PointLookupBatch(batch.data(), batch.size(), results.data());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(results[i], index.PointLookup(batch[i]));
  }
  // Range batches.
  auto sorted = keys32;
  std::sort(sorted.begin(), sorted.end());
  std::vector<KeyRange<std::uint32_t>> ranges;
  for (int i = 0; i < 200; ++i) {
    const std::size_t a = rng.Below(sorted.size() - 10);
    ranges.push_back({sorted[a], sorted[a + 9]});
  }
  std::vector<LookupResult> range_results(ranges.size());
  index.RangeLookupBatch(ranges.data(), ranges.size(), range_results.data());
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    ASSERT_EQ(range_results[i],
              index.RangeLookup(ranges[i].lo, ranges[i].hi));
  }
}

}  // namespace
}  // namespace cgrx::core
