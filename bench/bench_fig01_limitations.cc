// Figure 1: the three limitations of RX that motivate cgRX.
// (a) memory footprint of RX vs SA/B+/HT across build sizes,
// (b) range-lookup time of RX vs SA/B+ across selectivities,
// (c) point-lookup time after refit-applied update batches (the BVH
//     degradation pathology).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/indexes.h"
#include "src/rx/rx_index.h"
#include "src/util/rng.h"
#include "src/util/workloads.h"

namespace cgrx::bench {

void RegisterFigure() {
  const auto& scale = Scale::Get();

  // -- Figure 1a: memory footprint over dataset size. ------------------
  benchmark::RegisterBenchmark("Fig01a/footprint", [&scale](
                                                       benchmark::State&
                                                           state) {
    auto& table = Table("Fig01a: memory footprint vs dataset size");
    table.SetColumns({"dataset size [2^n]", "RX", "SA", "B+", "HT"});
    for (auto _ : state) {
      for (const int log2 : {20, 22, 24, 26}) {
        util::KeySetConfig cfg;
        cfg.count = scale.Keys(log2);
        cfg.key_bits = 32;
        cfg.uniformity = 0.2;
        const auto keys = util::MakeKeySet(cfg);
        std::vector<std::string> row = {std::to_string(log2)};
        for (BenchIndex competitor :
             {MakeRx(32), MakeSa(32), MakeBPlus(), MakeHt(32)}) {
          competitor.index.Build(keys);
          row.push_back(
              util::TablePrinter::Bytes(competitor.index.Stats().memory_bytes));
        }
        table.AddRow(row);
      }
    }
  })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);

  // -- Figure 1b: range lookups. ---------------------------------------
  benchmark::RegisterBenchmark("Fig01b/ranges", [&scale](benchmark::State&
                                                             state) {
    auto& table =
        Table("Fig01b: cumulative range-lookup time [ms] vs expected hits");
    table.SetColumns({"expected hits [2^n]", "RX", "SA", "B+"});
    for (auto _ : state) {
      util::KeySetConfig cfg;
      cfg.count = scale.Keys(26);
      cfg.key_bits = 32;
      cfg.uniformity = 0.0;  // Dense.
      const auto keys = util::MakeKeySet(cfg);
      auto sorted = keys;
      std::sort(sorted.begin(), sorted.end());
      for (const int hits_log2 : {0, 4, 10}) {
        const std::size_t hits = std::min<std::size_t>(
            std::size_t{1} << hits_log2, cfg.count / 2);
        const auto queries =
            util::MakeRangeQueries(sorted, scale.RangeBatch(), hits, 3);
        std::vector<core::KeyRange<std::uint64_t>> ranges;
        for (const auto& q : queries) ranges.push_back({q.lo, q.hi});
        std::vector<std::string> row = {std::to_string(hits_log2)};
        for (BenchIndex competitor : {MakeRx(32), MakeSa(32), MakeBPlus()}) {
          competitor.index.Build(keys);
          std::vector<core::LookupResult> results;
          const double ms = MeasureMs(
              [&] { competitor.index.RangeLookupBatch(ranges, &results); });
          row.push_back(util::TablePrinter::Num(ms, 2));
          benchmark::DoNotOptimize(results.data());
        }
        table.AddRow(row);
      }
    }
  })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);

  // -- Figure 1c: lookups after refit-applied updates. ------------------
  benchmark::RegisterBenchmark(
      "Fig01c/update_degradation", [&scale](benchmark::State& state) {
        auto& table =
            Table("Fig01c: point-lookup time [ms] after refit updates");
        table.SetColumns({"num updates [2^n]", "RX lookup time",
                          "slowdown vs fresh"});
        for (auto _ : state) {
          const std::size_t n = scale.Keys(24);
          std::vector<std::uint64_t> keys;
          keys.reserve(n);
          for (std::size_t i = 0; i < n; ++i) {
            keys.push_back(2 * i);  // Leave odd slots for inserts.
          }
          util::LookupBatchConfig lcfg;
          lcfg.count = scale.Keys(22);
          auto sorted = keys;
          const auto lookups =
              util::MakeLookupBatch(keys, sorted, 64, lcfg);

          double fresh_ms = 0;
          for (const int updates_log2 : {-1, 4, 8, 12}) {
            rx::RxConfig config;
            config.spare_capacity = 0.5;
            rx::RxIndex64 index(config);
            index.Build(std::vector<std::uint64_t>(keys));
            std::size_t applied = 0;
            if (updates_log2 >= 0) {
              const std::size_t count = std::min<std::size_t>(
                  std::size_t{1} << updates_log2, n / 4);
              std::vector<std::uint64_t> ins;
              std::vector<std::uint32_t> rows;
              for (std::size_t i = 0; i < count; ++i) {
                ins.push_back(2 * i + 1);
                rows.push_back(static_cast<std::uint32_t>(n + i));
              }
              index.InsertBatchRefit(ins, rows);
              applied = count;
            }
            std::vector<core::LookupResult> results(lookups.size());
            const double ms = MeasureMs([&] {
              index.PointLookupBatch(lookups.data(), lookups.size(),
                                     results.data());
            });
            if (updates_log2 < 0) fresh_ms = ms;
            table.AddRow(
                {updates_log2 < 0 ? "none"
                                  : std::to_string(updates_log2),
                 util::TablePrinter::Num(ms, 1),
                 util::TablePrinter::Num(fresh_ms > 0 ? ms / fresh_ms : 1.0,
                                         2)});
            benchmark::DoNotOptimize(results.data());
            benchmark::DoNotOptimize(applied);
          }
        }
      })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
}

}  // namespace cgrx::bench
