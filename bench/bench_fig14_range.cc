// Figure 14: range lookups on a dense 32-bit key range. Batch of range
// lookups with expected hits 2^0 .. 2^24; reports the normalized
// cumulative lookup time (total batch time / total retrieved entries)
// for cgRX(32), cgRX(256), RX, SA, B+, RTScan(RTc1) and FullScan.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/indexes.h"
#include "src/util/workloads.h"

namespace cgrx::bench {
namespace {

std::vector<BenchIndex> RangeCompetitors() {
  std::vector<BenchIndex> competitors;
  competitors.push_back(MakeCgrx(32, 32));
  competitors.push_back(MakeCgrx(32, 256));
  competitors.push_back(MakeRx(32));
  competitors.push_back(MakeSa(32));
  competitors.push_back(MakeBPlus());
  competitors.push_back(MakeRtScan(32));
  competitors.push_back(MakeFullScan(32));
  return competitors;
}

}  // namespace

void RegisterFigure() {
  const auto& scale = Scale::Get();
  auto& table = Table("Fig14: normalized cumulative range-lookup time "
                      "[us/entry]");
  std::vector<std::string> columns = {"expected hits [2^n]"};
  for (const BenchIndex& competitor : RangeCompetitors()) {
    columns.push_back(competitor.name);
  }
  table.SetColumns(columns);

  for (const int hits_log2 : {0, 4, 8, 12, 16, 20, 24}) {
    benchmark::RegisterBenchmark(
        ("Fig14/hits=2^" + std::to_string(hits_log2)).c_str(),
        [hits_log2, &table, &scale](benchmark::State& state) {
          // Dense 32-bit key set of 2^26 (paper scale).
          util::KeySetConfig cfg;
          cfg.count = scale.Keys(26);
          cfg.key_bits = 32;
          cfg.uniformity = 0.0;
          const auto keys = util::MakeKeySet(cfg);
          auto sorted = keys;
          std::sort(sorted.begin(), sorted.end());
          const std::size_t hits = std::min<std::size_t>(
              std::size_t{1} << hits_log2, cfg.count / 2);
          const auto queries =
              util::MakeRangeQueries(sorted, scale.RangeBatch(), hits, 7);
          std::vector<core::KeyRange<std::uint64_t>> ranges;
          ranges.reserve(queries.size());
          for (const auto& q : queries) ranges.push_back({q.lo, q.hi});
          std::vector<std::string> row = {std::to_string(hits_log2)};
          for (auto _ : state) {
            for (BenchIndex& competitor : RangeCompetitors()) {
              competitor.index.Build(keys);
              // RTScan and FullScan pay per-query costs orders of
              // magnitude higher; a smaller batch keeps the suite
              // runnable and the per-entry metric comparable.
              const bool expensive = competitor.name == "RTScan(RTc1)" ||
                                     competitor.name == "FullScan";
              std::vector<core::KeyRange<std::uint64_t>> batch(
                  ranges.begin(),
                  expensive
                      ? ranges.begin() +
                            static_cast<std::ptrdiff_t>(
                                std::min<std::size_t>(32, ranges.size()))
                      : ranges.end());
              std::vector<core::LookupResult> results;
              const double ms = MeasureMs([&] {
                competitor.index.RangeLookupBatch(batch, &results);
              });
              std::uint64_t retrieved = 0;
              for (const auto& r : results) retrieved += r.match_count;
              const double us_per_entry =
                  retrieved == 0 ? 0
                                 : ms * 1000.0 /
                                       static_cast<double>(retrieved);
              row.push_back(util::TablePrinter::Num(us_per_entry, 4));
              benchmark::DoNotOptimize(results.data());
            }
          }
          table.AddRow(row);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace cgrx::bench
