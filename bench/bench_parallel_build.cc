// Parallel-build microbenchmark: what the work-stealing task scheduler
// buys on the construction path, emitted as machine-readable JSON
// (BENCH_parallel.json).
//
// Each section builds the same artifact twice -- once forced serial
// (TaskScheduler::SerialScope), once on the scheduler -- and reports
// both times plus the speedup:
//
//   * radix_sort_pairs: the bulk-load sort (parallel histogram+scatter)
//   * bvh_build_cgrx:   cgRX Build (parallel top SAH splits, fragment
//                       subtrees, wide collapse quantization)
//   * bvh_build_cgrxu:  cgRXu Build (same substrate, bucket layout)
//   * sharded_build:    "sharded:cgrxu" x8 Build (shard fan-out nesting
//                       the per-shard BVH builds on the same scheduler)
//
// Serial and parallel builds are asserted byte-equal where cheap (sort
// output, index entry counts) -- determinism is part of the contract.
//
// Standalone (no google-benchmark dependency) so CI can always build
// and smoke-run it:
//
//   bench_parallel_build [--keys N] [--out FILE] [--out_dir DIR]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_io.h"
#include "src/api/factory.h"
#include "src/api/index.h"
#include "src/util/radix_sort.h"
#include "src/util/rng.h"
#include "src/util/task_scheduler.h"
#include "src/util/timer.h"

namespace {

using cgrx::api::IndexOptions;
using cgrx::api::IndexPtr;
using cgrx::api::MakeIndex;
using cgrx::api::ShardScheme;
using cgrx::util::Rng;
using cgrx::util::TaskScheduler;
using cgrx::util::Timer;

struct SectionResult {
  std::string name;
  double serial_seconds = 0;
  double parallel_seconds = 0;
  bool matches = true;

  double Speedup() const {
    return parallel_seconds > 0 ? serial_seconds / parallel_seconds : 0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t num_keys = 4'000'000;
  std::string out_file = "BENCH_parallel.json";
  std::string out_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--keys") {
      num_keys = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--out") {
      out_file = next();
    } else if (arg == "--out_dir") {
      out_dir = next();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--keys N] [--out FILE] [--out_dir DIR]\n",
                   argv[0]);
      return 2;
    }
  }
  if (num_keys == 0) {
    std::fprintf(stderr, "--keys must be positive\n");
    return 2;
  }
  const std::string out_path = cgrx::bench::OutputPath::Resolve(out_file,
                                                                out_dir);

  const int threads = TaskScheduler::Global().num_threads();
  std::printf("scheduler threads: %d, keys: %zu\n", threads, num_keys);

  Rng rng(0xbadc0de);
  std::vector<std::uint64_t> keys(num_keys);
  for (auto& k : keys) k = rng.Below(1ULL << 44);

  std::vector<SectionResult> sections;
  auto report = [&](SectionResult row) {
    std::printf("%-18s  serial %7.3fs  parallel %7.3fs  speedup %5.2fx  %s\n",
                row.name.c_str(), row.serial_seconds, row.parallel_seconds,
                row.Speedup(), row.matches ? "ok" : "MISMATCH");
    sections.push_back(std::move(row));
  };

  {
    SectionResult row;
    row.name = "radix_sort_pairs";
    std::vector<std::uint64_t> serial_keys = keys;
    std::vector<std::uint32_t> serial_vals(num_keys);
    for (std::size_t i = 0; i < num_keys; ++i) {
      serial_vals[i] = static_cast<std::uint32_t>(i);
    }
    std::vector<std::uint64_t> parallel_keys = keys;
    std::vector<std::uint32_t> parallel_vals = serial_vals;
    {
      TaskScheduler::SerialScope force_serial;
      Timer timer;
      cgrx::util::RadixSortPairs(&serial_keys, &serial_vals, 44);
      row.serial_seconds = timer.ElapsedSeconds();
    }
    Timer timer;
    cgrx::util::RadixSortPairs(&parallel_keys, &parallel_vals, 44);
    row.parallel_seconds = timer.ElapsedSeconds();
    row.matches =
        serial_keys == parallel_keys && serial_vals == parallel_vals;
    report(std::move(row));
  }

  auto build_section = [&](const std::string& name,
                           const std::string& backend,
                           const IndexOptions& options) {
    SectionResult row;
    row.name = name;
    std::size_t serial_entries = 0;
    {
      TaskScheduler::SerialScope force_serial;
      const IndexPtr<std::uint64_t> index =
          MakeIndex<std::uint64_t>(backend, options);
      Timer timer;
      index->Build(std::vector<std::uint64_t>(keys));
      row.serial_seconds = timer.ElapsedSeconds();
      serial_entries = index->size();
    }
    const IndexPtr<std::uint64_t> index =
        MakeIndex<std::uint64_t>(backend, options);
    Timer timer;
    index->Build(std::vector<std::uint64_t>(keys));
    row.parallel_seconds = timer.ElapsedSeconds();
    row.matches = index->size() == serial_entries;
    report(std::move(row));
  };

  build_section("bvh_build_cgrx", "cgrx", {});
  build_section("bvh_build_cgrxu", "cgrxu", {});
  {
    IndexOptions options;
    options.shard_count = 8;
    options.shard_scheme = ShardScheme::kRange;
    build_section("sharded_build", "sharded:cgrxu", options);
  }

  bool all_match = true;
  for (const SectionResult& row : sections) all_match &= row.matches;

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"parallel_build\",\n");
  std::fprintf(out, "  \"threads\": %d,\n", threads);
  std::fprintf(out, "  \"keys\": %zu,\n", num_keys);
  std::fprintf(out, "  \"all_match\": %s,\n", all_match ? "true" : "false");
  std::fprintf(out, "  \"sections\": [\n");
  for (std::size_t i = 0; i < sections.size(); ++i) {
    const SectionResult& row = sections[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"serial_seconds\": %.4f, "
                 "\"parallel_seconds\": %.4f, \"speedup\": %.3f, "
                 "\"matches\": %s}%s\n",
                 row.name.c_str(), row.serial_seconds, row.parallel_seconds,
                 row.Speedup(), row.matches ? "true" : "false",
                 i + 1 < sections.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return all_match ? 0 : 1;
}
