// Figure 11: robustness of the bucket-size choice. Twelve bucket sizes
// (2^2 .. 2^13) against the nineteen key distributions; per
// distribution, reports point-lookup time and throughput-per-footprint
// relative to the best bucket size (1.0 = best), mirroring the paper's
// heat maps. The paper's conclusion -- 32 best for TP/footprint, 256 a
// space-efficient alternative -- should reproduce as columns near 1.0.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/core/cgrx_index.h"
#include "src/util/workloads.h"

namespace cgrx::bench {
namespace {

const std::vector<std::uint32_t>& BucketSizes() {
  static const std::vector<std::uint32_t> kSizes = {
      4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192};
  return kSizes;
}

}  // namespace

void RegisterFigure() {
  const auto& scale = Scale::Get();
  auto& time_table =
      Table("Fig11a: point-lookup time relative to best bucket size");
  auto& tpf_table =
      Table("Fig11b: throughput/footprint relative to best bucket size");
  std::vector<std::string> columns = {"distribution"};
  for (const std::uint32_t b : BucketSizes()) {
    columns.push_back(std::to_string(b));
  }
  time_table.SetColumns(columns);
  tpf_table.SetColumns(columns);

  for (const util::KeyDistribution distribution :
       util::AllKeyDistributions()) {
    const std::string dist_name = util::ToString(distribution);
    benchmark::RegisterBenchmark(
        ("Fig11/" + dist_name).c_str(),
        [distribution, dist_name, &time_table, &tpf_table,
         &scale](benchmark::State& state) {
          const auto keys = util::MakeDistributedKeySet(
              distribution, scale.Keys(24), 32, 1);
          auto sorted = keys;
          std::sort(sorted.begin(), sorted.end());
          util::LookupBatchConfig lcfg;
          lcfg.count = scale.Keys(22);
          const auto lookups64 =
              util::MakeLookupBatch(keys, sorted, 32, lcfg);
          std::vector<std::uint32_t> keys32(keys.begin(), keys.end());
          std::vector<std::uint32_t> lookups(lookups64.begin(),
                                             lookups64.end());
          std::vector<double> times;
          std::vector<double> tpfs;
          for (auto _ : state) {
            for (const std::uint32_t bucket : BucketSizes()) {
              core::CgrxConfig config;
              config.bucket_size = bucket;
              core::CgrxIndex32 index(config);
              index.Build(std::vector<std::uint32_t>(keys32));
              std::vector<core::LookupResult> results(lookups.size());
              const double ms = MeasureMs([&] {
                index.PointLookupBatch(lookups.data(), lookups.size(),
                                       results.data());
              });
              times.push_back(ms);
              tpfs.push_back(ThroughputPerFootprint(
                  lookups.size(), ms, index.MemoryFootprintBytes()));
              benchmark::DoNotOptimize(results.data());
            }
          }
          const double best_time =
              *std::min_element(times.begin(), times.end());
          const double best_tpf = *std::max_element(tpfs.begin(),
                                                    tpfs.end());
          std::vector<std::string> time_row = {dist_name};
          std::vector<std::string> tpf_row = {dist_name};
          for (std::size_t i = 0; i < times.size(); ++i) {
            time_row.push_back(
                util::TablePrinter::Num(best_time / times[i], 2));
            tpf_row.push_back(util::TablePrinter::Num(
                best_tpf > 0 ? tpfs[i] / best_tpf : 0, 2));
          }
          time_table.AddRow(time_row);
          tpf_table.AddRow(tpf_row);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace cgrx::bench
