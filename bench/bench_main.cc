// Shared main for all per-figure benchmark binaries: runs the
// google-benchmark registry populated by the binary's RegisterFigure()
// and then prints the figure tables.
#include <benchmark/benchmark.h>

#include "bench/harness.h"

namespace cgrx::bench {
// Defined by each figure binary.
void RegisterFigure();
}  // namespace cgrx::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  cgrx::bench::RegisterFigure();
  benchmark::RunSpecifiedBenchmarks();
  cgrx::bench::PrintTables();
  benchmark::Shutdown();
  return 0;
}
