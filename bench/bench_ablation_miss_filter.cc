// Ablation (extension beyond the paper): the Bloom miss-filter. The
// paper's Figure 16 concludes cgRX "should be primarily used in
// hit-only or hit-mostly lookup scenarios" because in-range misses pay
// the full ray + bucket-search cost. This bench replays the Figure 16
// miss sweep with the filter off and on, reporting lookup time and the
// footprint cost of the filter.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/core/cgrx_index.h"
#include "src/util/workloads.h"

namespace cgrx::bench {

void RegisterFigure() {
  const auto& scale = Scale::Get();
  auto& table =
      Table("Ablation: Bloom miss-filter vs Figure 16 miss sweep "
            "(cgRX(32), 32-bit, uniformity 100%)");
  table.SetColumns({"miss fraction", "no filter [ms]",
                    "filter 10 b/key [ms]", "speedup", "footprint delta"});
  for (const double misses : {0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    benchmark::RegisterBenchmark(
        ("AblationMissFilter/m" + util::TablePrinter::Num(misses * 100, 0))
            .c_str(),
        [misses, &table, &scale](benchmark::State& state) {
          util::KeySetConfig cfg;
          cfg.count = scale.Keys(26);
          cfg.key_bits = 32;
          cfg.uniformity = 1.0;
          const auto keys = util::MakeKeySet(cfg);
          auto sorted = keys;
          std::sort(sorted.begin(), sorted.end());
          util::LookupBatchConfig lcfg;
          lcfg.count = scale.PointBatch();
          lcfg.miss_anywhere = misses;
          const auto lookups64 =
              util::MakeLookupBatch(keys, sorted, 32, lcfg);
          std::vector<std::uint32_t> keys32(keys.begin(), keys.end());
          std::vector<std::uint32_t> lookups(lookups64.begin(),
                                             lookups64.end());
          for (auto _ : state) {
            double times[2] = {0, 0};
            std::size_t footprints[2] = {0, 0};
            for (const int which : {0, 1}) {
              core::CgrxConfig config;
              config.bucket_size = 32;
              config.miss_filter_bits_per_key = which == 0 ? 0.0 : 10.0;
              core::CgrxIndex32 index(config);
              index.Build(std::vector<std::uint32_t>(keys32));
              std::vector<core::LookupResult> results(lookups.size());
              times[which] = MeasureMs([&] {
                index.PointLookupBatch(lookups.data(), lookups.size(),
                                       results.data());
              });
              footprints[which] = index.MemoryFootprintBytes();
              benchmark::DoNotOptimize(results.data());
            }
            table.AddRow(
                {util::TablePrinter::Num(misses * 100, 0) + "%",
                 util::TablePrinter::Num(times[0], 1),
                 util::TablePrinter::Num(times[1], 1),
                 util::TablePrinter::Num(times[0] / times[1], 2) + "x",
                 util::TablePrinter::Bytes(footprints[1] - footprints[0])});
          }
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace cgrx::bench
