#ifndef CGRX_BENCH_INDEXES_H_
#define CGRX_BENCH_INDEXES_H_

#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/baselines/btree.h"
#include "src/baselines/full_scan.h"
#include "src/baselines/hash_table.h"
#include "src/baselines/rtscan.h"
#include "src/baselines/sorted_array.h"
#include "src/core/cgrx_index.h"
#include "src/core/cgrxu_index.h"
#include "src/rx/rx_index.h"

namespace cgrx::bench {

/// Factories for the competitor set of the paper's evaluation
/// (Section VI). `bits` selects the key width (32 or 64).

inline IndexOps MakeCgrx(int bits, std::uint32_t bucket_size,
                         core::Representation representation =
                             core::Representation::kOptimized) {
  core::CgrxConfig config;
  config.bucket_size = bucket_size;
  config.representation = representation;
  std::string name = "cgRX(" + std::to_string(bucket_size) + ")";
  if (representation == core::Representation::kNaive) name += "[naive]";
  if (bits == 32) {
    return Wrap(name, std::make_shared<core::CgrxIndex32>(config));
  }
  return Wrap(name, std::make_shared<core::CgrxIndex64>(config));
}

inline IndexOps MakeCgrxu(int bits, std::uint32_t node_bytes) {
  core::CgrxuConfig config;
  config.node_bytes = node_bytes;
  const std::string name =
      node_bytes == 64 ? "cgRXu(.5 cl)" : "cgRXu(1 cl)";
  if (bits == 32) {
    return Wrap(name, std::make_shared<core::CgrxuIndex32>(config));
  }
  return Wrap(name, std::make_shared<core::CgrxuIndex64>(config));
}

inline IndexOps MakeRx(int bits) {
  if (bits == 32) {
    return Wrap("RX", std::make_shared<rx::RxIndex32>());
  }
  return Wrap("RX", std::make_shared<rx::RxIndex64>());
}

inline IndexOps MakeSa(int bits) {
  if (bits == 32) {
    return Wrap("SA",
                std::make_shared<baselines::SortedArray<std::uint32_t>>());
  }
  return Wrap("SA",
              std::make_shared<baselines::SortedArray<std::uint64_t>>());
}

inline IndexOps MakeBPlus() {
  return Wrap("B+", std::make_shared<baselines::BPlusTree>());
}

inline IndexOps MakeHt(int bits, double load_factor = 0.8) {
  if (bits == 32) {
    return Wrap("HT", std::make_shared<baselines::HashTable<std::uint32_t>>(
                          load_factor));
  }
  return Wrap("HT", std::make_shared<baselines::HashTable<std::uint64_t>>(
                        load_factor));
}

inline IndexOps MakeRtScan(int bits) {
  if (bits == 32) {
    return Wrap("RTScan(RTc1)",
                std::make_shared<baselines::RtScan<std::uint32_t>>());
  }
  return Wrap("RTScan(RTc1)",
              std::make_shared<baselines::RtScan<std::uint64_t>>());
}

inline IndexOps MakeFullScan(int bits) {
  if (bits == 32) {
    return Wrap("FullScan",
                std::make_shared<baselines::FullScan<std::uint32_t>>());
  }
  return Wrap("FullScan",
              std::make_shared<baselines::FullScan<std::uint64_t>>());
}

/// The point-lookup competitor set of Figures 12 (32-bit, with B+) and
/// 13 (64-bit, without B+ which "lacks the support for wide keys").
inline std::vector<IndexOps> PointCompetitors(int bits) {
  std::vector<IndexOps> ops;
  ops.push_back(MakeCgrx(bits, 32));
  ops.push_back(MakeCgrx(bits, 256));
  ops.push_back(MakeRx(bits));
  ops.push_back(MakeSa(bits));
  if (bits == 32) ops.push_back(MakeBPlus());
  ops.push_back(MakeHt(bits));
  return ops;
}

}  // namespace cgrx::bench

#endif  // CGRX_BENCH_INDEXES_H_
