#ifndef CGRX_BENCH_INDEXES_H_
#define CGRX_BENCH_INDEXES_H_

#include <string>
#include <utility>
#include <vector>

#include "src/api/any_index.h"
#include "src/api/factory.h"
#include "src/core/types.h"

namespace cgrx::bench {

/// A figure competitor: the display label used in the paper's tables
/// plus a width-erased handle created through the public factory
/// (api::MakeIndex). `bits` selects the key width (32 or 64).
struct BenchIndex {
  std::string name;
  api::AnyIndex index;
};

/// Factories for the competitor set of the paper's evaluation
/// (Section VI).

inline BenchIndex MakeCgrx(int bits, std::uint32_t bucket_size,
                           core::Representation representation =
                               core::Representation::kOptimized) {
  api::IndexOptions options;
  options.bucket_size = bucket_size;
  options.representation = representation;
  std::string name = "cgRX(" + std::to_string(bucket_size) + ")";
  if (representation == core::Representation::kNaive) name += "[naive]";
  return {std::move(name), api::MakeAnyIndex("cgrx", bits, options)};
}

inline BenchIndex MakeCgrxu(int bits, std::uint32_t node_bytes) {
  api::IndexOptions options;
  options.node_bytes = node_bytes;
  std::string name = node_bytes == 64 ? "cgRXu(.5 cl)" : "cgRXu(1 cl)";
  return {std::move(name), api::MakeAnyIndex("cgrxu", bits, options)};
}

inline BenchIndex MakeRx(int bits) {
  return {"RX", api::MakeAnyIndex("rx", bits)};
}

inline BenchIndex MakeSa(int bits) {
  return {"SA", api::MakeAnyIndex("sa", bits)};
}

/// The paper's B+ baseline runs at 32 bit only ("lacks the support for
/// wide keys").
inline BenchIndex MakeBPlus() {
  return {"B+", api::MakeAnyIndex("btree", 32)};
}

inline BenchIndex MakeHt(int bits, double load_factor = 0.8) {
  api::IndexOptions options;
  options.load_factor = load_factor;
  return {"HT", api::MakeAnyIndex("ht", bits, options)};
}

inline BenchIndex MakeRtScan(int bits) {
  return {"RTScan(RTc1)", api::MakeAnyIndex("rtscan", bits)};
}

inline BenchIndex MakeFullScan(int bits) {
  return {"FullScan", api::MakeAnyIndex("fullscan", bits)};
}

/// The point-lookup competitor set of Figures 12 (32-bit, with B+) and
/// 13 (64-bit, without B+ which "lacks the support for wide keys").
inline std::vector<BenchIndex> PointCompetitors(int bits) {
  std::vector<BenchIndex> competitors;
  competitors.push_back(MakeCgrx(bits, 32));
  competitors.push_back(MakeCgrx(bits, 256));
  competitors.push_back(MakeRx(bits));
  competitors.push_back(MakeSa(bits));
  if (bits == 32) competitors.push_back(MakeBPlus());
  competitors.push_back(MakeHt(bits));
  return competitors;
}

}  // namespace cgrx::bench

#endif  // CGRX_BENCH_INDEXES_H_
