// Persistence bench: snapshot save/load vs. full rebuild for the
// raytracing backends (the tentpole claim: a cgRX snapshot load is a
// disk read + buffer restore, the rebuild is sort + scene + BVH
// construction), plus write-ahead-log append and replay throughput.
// Emits machine-readable JSON (BENCH_persist.json).
//
// Standalone (no google-benchmark dependency) so the Release CI job can
// always build and smoke-run it:
//
//   bench_persist [--keys N] [--waves W] [--wave_size S] [--dir DIR]
//                 [--out FILE] [--out_dir DIR]
//
// Defaults reproduce the acceptance configuration: 10M uniform uint64
// keys; the headline number is load_speedup_vs_rebuild for cgrx
// (acceptance: >= 5x at 10M keys).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_io.h"
#include "src/api/factory.h"
#include "src/api/index.h"
#include "src/storage/snapshot.h"
#include "src/storage/wal.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace {

using cgrx::api::IndexPtr;
using cgrx::api::MakeIndex;
using cgrx::storage::OpenIndex;
using cgrx::storage::SaveIndex;
using cgrx::storage::UpdateWave;
using cgrx::storage::WriteAheadLog;
using cgrx::util::Rng;
using cgrx::util::Timer;

struct BackendResult {
  std::string backend;
  double build_seconds = 0;
  double save_seconds = 0;
  double load_seconds = 0;
  std::uintmax_t snapshot_bytes = 0;
  double load_speedup_vs_rebuild = 0;
};

BackendResult RunBackend(const std::string& backend,
                         const std::vector<std::uint64_t>& keys,
                         const std::filesystem::path& dir) {
  BackendResult r;
  r.backend = backend;
  IndexPtr<std::uint64_t> index = MakeIndex<std::uint64_t>(backend);
  {
    Timer timer;
    index->Build(keys);
    r.build_seconds = timer.ElapsedSeconds();
  }
  const std::filesystem::path file = dir / (backend + ".cgrx");
  {
    Timer timer;
    SaveIndex(*index, file);
    r.save_seconds = timer.ElapsedSeconds();
  }
  r.snapshot_bytes = std::filesystem::file_size(file);
  IndexPtr<std::uint64_t> restored;
  {
    Timer timer;
    restored = OpenIndex<std::uint64_t>(file);
    r.load_seconds = timer.ElapsedSeconds();
  }
  if (restored->size() != index->size()) {
    std::fprintf(stderr, "%s: restored size mismatch\n", backend.c_str());
    std::exit(1);
  }
  r.load_speedup_vs_rebuild = r.build_seconds / r.load_seconds;
  std::printf(
      "%-8s build %7.3fs  save %7.3fs  load %7.3fs  (%6.1f MiB)  "
      "load speedup vs rebuild: %5.2fx\n",
      backend.c_str(), r.build_seconds, r.save_seconds, r.load_seconds,
      static_cast<double>(r.snapshot_bytes) / (1024.0 * 1024.0),
      r.load_speedup_vs_rebuild);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t num_keys = 10'000'000;
  std::size_t num_waves = 200;
  std::size_t wave_size = 10'000;
  std::string scratch;
  std::string out_file = "BENCH_persist.json";
  std::string out_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--keys") {
      num_keys = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--waves") {
      num_waves = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--wave_size") {
      wave_size = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--dir") {
      scratch = next();
    } else if (arg == "--out") {
      out_file = next();
    } else if (arg == "--out_dir") {
      out_dir = next();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--keys N] [--waves W] [--wave_size S] "
                   "[--dir DIR] [--out FILE] [--out_dir DIR]\n",
                   argv[0]);
      return 2;
    }
  }
  if (num_keys == 0 || num_waves == 0 || wave_size == 0) {
    std::fprintf(stderr, "--keys, --waves and --wave_size must be "
                         "positive\n");
    return 2;
  }
  const std::string out_path = cgrx::bench::OutputPath::Resolve(out_file,
                                                                out_dir);
  const std::filesystem::path dir =
      scratch.empty()
          ? std::filesystem::temp_directory_path() / "cgrx_bench_persist"
          : std::filesystem::path(scratch);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  Rng rng(0x5157a9);
  std::vector<std::uint64_t> keys(num_keys);
  for (auto& k : keys) k = rng();
  std::printf("keys: %zu\n", num_keys);

  std::vector<BackendResult> results;
  for (const char* backend : {"cgrx", "cgrxu", "rx", "sa"}) {
    results.push_back(RunBackend(backend, keys, dir));
  }

  // WAL throughput: append+commit per wave (the serving pattern), then
  // one replay pass over the whole log.
  double append_seconds = 0;
  double replay_seconds = 0;
  std::size_t replayed = 0;
  {
    const std::filesystem::path wal_path = dir / "bench.wal";
    auto wal = WriteAheadLog<std::uint64_t>::Create(wal_path);
    std::vector<UpdateWave<std::uint64_t>> waves(num_waves);
    for (std::size_t w = 0; w < num_waves; ++w) {
      waves[w].insert_keys.resize(wave_size);
      waves[w].insert_rows.resize(wave_size);
      for (std::size_t i = 0; i < wave_size; ++i) {
        waves[w].insert_keys[i] = rng();
        waves[w].insert_rows[i] = static_cast<std::uint32_t>(i);
      }
    }
    Timer append_timer;
    for (std::size_t w = 0; w < num_waves; ++w) {
      wal.AppendCommitted(waves[w], w + 1);
    }
    append_seconds = append_timer.ElapsedSeconds();
    wal.Close();
    Timer replay_timer;
    WriteAheadLog<std::uint64_t>::Open(
        wal_path, [&](UpdateWave<std::uint64_t> wave, std::uint64_t) {
          replayed += wave.insert_keys.size();
        });
    replay_seconds = replay_timer.ElapsedSeconds();
  }
  const double logged = static_cast<double>(num_waves * wave_size);
  std::printf(
      "WAL: %zu waves x %zu entries  append+fsync %.3fs (%.1f Mentries/s)"
      "  replay %.3fs (%.1f Mentries/s)\n",
      num_waves, wave_size, append_seconds, logged / append_seconds / 1e6,
      replay_seconds, static_cast<double>(replayed) / replay_seconds / 1e6);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"persist\",\n");
  std::fprintf(out, "  \"key_bits\": 64,\n");
  std::fprintf(out, "  \"keys\": %zu,\n", num_keys);
  std::fprintf(out, "  \"backends\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BackendResult& r = results[i];
    std::fprintf(out,
                 "    {\"backend\": \"%s\", \"build_seconds\": %.6f, "
                 "\"save_seconds\": %.6f, \"load_seconds\": %.6f, "
                 "\"snapshot_bytes\": %ju, "
                 "\"load_speedup_vs_rebuild\": %.3f}%s\n",
                 r.backend.c_str(), r.build_seconds, r.save_seconds,
                 r.load_seconds, r.snapshot_bytes,
                 r.load_speedup_vs_rebuild,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"wal\": {\"waves\": %zu, \"wave_size\": %zu, "
                    "\"append_seconds\": %.6f, \"replay_seconds\": %.6f, "
                    "\"append_entries_per_sec\": %.0f, "
                    "\"replay_entries_per_sec\": %.0f}\n",
               num_waves, wave_size, append_seconds, replay_seconds,
               logged / append_seconds,
               static_cast<double>(replayed) / replay_seconds);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  std::filesystem::remove_all(dir);
  return 0;
}
