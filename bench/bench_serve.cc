// Serving-tier load generator: open-loop offered load over loopback
// against the in-process RPC server (src/net), emitted as
// machine-readable JSON (BENCH_serve.json).
//
// Shape: one Server hosting one durable index, populated over the wire
// by update waves; then a sweep of offered-QPS points. Each point runs
// N client connections (one thread each) firing point-lookup RPCs of
// `--batch` zipf-skewed keys on an open-loop schedule: request i on a
// connection is *due* at start + i * interval, and its latency is
// measured from that due time, not from the actual send -- so a server
// that falls behind accrues queueing delay in the percentiles instead
// of silently slowing the generator (coordinated omission). A fraction
// of requests are single-key update waves (--write_ratio).
//
// A final overload phase runs against a second server configured with
// a tight per-client token bucket and reports how fast rejections come
// back: admission control must degrade to quick kResourceExhausted
// answers, never to hangs.
//
// Standalone (no google-benchmark dependency) so CI can always build
// and smoke-run it:
//
// With --deadline_ms D every RPC carries a server-enforced deadline,
// and each sweep point additionally reports the outcome split: answers
// inside the deadline, kOk answers that came back late anyway
// (queued-then-late: the server finished them but the caller had
// already lost interest), and kDeadlineExceeded answers (dropped
// before execution by admission or at dispatch).
//
// With --server_breakdown every sweep point additionally diffs the
// process-global per-stage latency histograms (decode, admission,
// queue_wait, execute, wal_*, response_write, ...) across the point and
// reports each stage's count/mean/p99 -- the server-side view of where
// a request's time went, next to the client-observed percentiles.
// --metrics_out FILE dumps the final /metrics scrape to FILE so CI can
// lint and archive the Prometheus exposition.
//
//   bench_serve [--keys N] [--connections C] [--seconds S] [--batch B]
//               [--qps Q1,Q2,...] [--write_ratio R] [--theta T]
//               [--deadline_ms D] [--server_breakdown]
//               [--metrics_out FILE] [--out FILE] [--out_dir DIR]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "bench/bench_io.h"

#include "src/net/client.h"
#include "src/net/server.h"
#include "src/net/wire.h"
#include "src/util/histogram.h"
#include "src/util/rng.h"
#include "src/util/trace.h"
#include "src/util/zipf.h"

namespace {

using cgrx::net::Client;
using cgrx::net::Server;
using cgrx::net::Status;
using cgrx::util::LatencyHistogram;
using cgrx::util::Rng;
using cgrx::util::TraceStage;
using cgrx::util::ZipfGenerator;

using Clock = std::chrono::steady_clock;

/// One stage's share of a sweep point, diffed from the process-global
/// stage histograms (so concurrent background work -- checkpoints, a
/// replica -- shows up honestly in its own stage rather than skewing
/// the request stages).
struct StageCut {
  std::uint64_t count = 0;
  double mean_us = 0;
  double p99_us = 0;
};

using StageSnapshots =
    std::array<LatencyHistogram::Snapshot, cgrx::util::kTraceStageCount>;

StageSnapshots SnapshotStages() {
  StageSnapshots all;
  for (std::size_t s = 0; s < all.size(); ++s) {
    all[s] =
        cgrx::util::StageHistogram(static_cast<TraceStage>(s)).snapshot();
  }
  return all;
}

std::array<StageCut, cgrx::util::kTraceStageCount> DiffStages(
    const StageSnapshots& before, const StageSnapshots& after) {
  std::array<StageCut, cgrx::util::kTraceStageCount> cuts;
  for (std::size_t s = 0; s < cuts.size(); ++s) {
    LatencyHistogram::Snapshot delta = after[s];
    for (std::size_t i = 0; i < delta.buckets.size(); ++i) {
      delta.buckets[i] -= before[s].buckets[i];
    }
    delta.count -= before[s].count;
    delta.sum -= before[s].sum;
    cuts[s].count = delta.count;
    cuts[s].mean_us = delta.Mean();
    cuts[s].p99_us = delta.Quantile(0.99);
  }
  return cuts;
}

struct Point {
  double offered_qps = 0;
  double achieved_qps = 0;      // Completed RPCs per second.
  double lookups_per_sec = 0;   // Keys resolved per second.
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;   // kResourceExhausted answers.
  std::uint64_t errors = 0;     // Any other non-OK status, or transport.
  // Deadline outcome split (all zero unless --deadline_ms is set).
  std::uint64_t ok_in_deadline = 0;    // kOk within the budget.
  std::uint64_t ok_late = 0;           // kOk, but past the budget.
  std::uint64_t deadline_exceeded = 0; // kDeadlineExceeded answers.
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double max_us = 0;
};

double Percentile(std::vector<double>* sorted_in_place, double q) {
  std::vector<double>& v = *sorted_in_place;
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto rank = static_cast<std::size_t>(q * static_cast<double>(
                                                     v.size() - 1));
  return v[rank];
}

/// One offered-QPS point: `connections` threads, open-loop schedule.
Point RunPoint(std::uint16_t port, const std::string& index,
               double offered_qps, int connections, double seconds,
               std::size_t batch, double write_ratio, std::size_t num_keys,
               double theta, std::uint32_t deadline_ms) {
  const ZipfGenerator zipf(num_keys, theta);
  const double per_connection_qps =
      offered_qps / static_cast<double>(connections);
  const auto interval = std::chrono::nanoseconds(
      static_cast<std::uint64_t>(1e9 / per_connection_qps));
  const auto requests_per_connection = static_cast<std::uint64_t>(
      per_connection_qps * seconds);

  struct PerThread {
    std::vector<double> latencies_us;
    std::uint64_t ok = 0;
    std::uint64_t rejected = 0;
    std::uint64_t errors = 0;
    std::uint64_t keys_resolved = 0;
    std::uint64_t ok_in_deadline = 0;
    std::uint64_t ok_late = 0;
    std::uint64_t deadline_exceeded = 0;
  };
  std::vector<PerThread> results(static_cast<std::size_t>(connections));
  std::vector<std::thread> threads;
  const Clock::time_point start = Clock::now() + std::chrono::milliseconds(5);

  for (int t = 0; t < connections; ++t) {
    threads.emplace_back([&, t] {
      Client::Options copts;
      copts.call_deadline = std::chrono::milliseconds(deadline_ms);
      Client client("localhost", port, copts);
      PerThread& mine = results[static_cast<std::size_t>(t)];
      mine.latencies_us.reserve(requests_per_connection);
      Rng rng(0x5EEDULL + static_cast<std::uint64_t>(t));
      std::vector<std::uint64_t> keys(batch);
      std::uint64_t next_insert_key =
          1'000'000'000ULL * (static_cast<std::uint64_t>(t) + 1);
      for (std::uint64_t i = 0; i < requests_per_connection; ++i) {
        const Clock::time_point due = start + i * interval;
        std::this_thread::sleep_until(due);  // No-op once behind.
        const bool is_write = rng.NextDouble() < write_ratio;
        Status status;
        std::size_t resolved = 0;
        const Clock::time_point call_start = Clock::now();
        try {
          if (is_write) {
            const std::uint64_t key = next_insert_key++;
            status =
                client
                    .Update(index, {key},
                            {static_cast<std::uint32_t>(key & 0xffffff)}, {})
                    .status;
          } else {
            for (std::size_t k = 0; k < batch; ++k) {
              keys[k] = static_cast<std::uint64_t>(zipf.Next(&rng)) + 1;
            }
            const Client::LookupReply reply = client.PointLookup(index, keys);
            status = reply.status;
            resolved = reply.results.size();
          }
        } catch (const std::exception&) {
          // Transport timeout or reset; the client poisons and
          // reconnects lazily on the next call.
          ++mine.errors;
          continue;
        }
        const Clock::time_point done = Clock::now();
        const double latency_us =
            std::chrono::duration<double, std::micro>(done - due).count();
        // Deadline accounting runs on the call's own wall time (send to
        // answer), matching the budget the server enforces; the
        // percentile latency stays anchored to the open-loop due time.
        const double call_ms =
            std::chrono::duration<double, std::milli>(done - call_start)
                .count();
        if (status == Status::kOk) {
          ++mine.ok;
          mine.keys_resolved += resolved;
          mine.latencies_us.push_back(latency_us);
          if (deadline_ms > 0) {
            if (call_ms <= static_cast<double>(deadline_ms)) {
              ++mine.ok_in_deadline;
            } else {
              ++mine.ok_late;
            }
          }
        } else if (status == Status::kResourceExhausted) {
          // Rejections count toward the latency profile too: the whole
          // point of admission control is that they come back fast.
          ++mine.rejected;
          mine.latencies_us.push_back(latency_us);
        } else if (status == Status::kDeadlineExceeded) {
          // Refused or dropped unexecuted under its budget -- the
          // deadline answer must come back fast, so it counts toward
          // the latency profile as well.
          ++mine.deadline_exceeded;
          mine.latencies_us.push_back(latency_us);
        } else {
          ++mine.errors;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  Point point;
  point.offered_qps = offered_qps;
  std::vector<double> all;
  for (const PerThread& r : results) {
    point.ok += r.ok;
    point.rejected += r.rejected;
    point.errors += r.errors;
    point.ok_in_deadline += r.ok_in_deadline;
    point.ok_late += r.ok_late;
    point.deadline_exceeded += r.deadline_exceeded;
    point.lookups_per_sec += static_cast<double>(r.keys_resolved);
    all.insert(all.end(), r.latencies_us.begin(), r.latencies_us.end());
  }
  point.achieved_qps = static_cast<double>(point.ok) / elapsed;
  point.lookups_per_sec /= elapsed;
  point.p50_us = Percentile(&all, 0.50);
  point.p99_us = Percentile(&all, 0.99);
  point.p999_us = Percentile(&all, 0.999);
  point.max_us = all.empty() ? 0 : all.back();
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t num_keys = 1'000'000;
  int connections = 8;
  double seconds = 2.0;
  std::size_t batch = 32;
  double write_ratio = 0.02;
  double theta = 0.99;
  std::uint32_t deadline_ms = 0;
  bool server_breakdown = false;
  std::string metrics_out;
  std::string qps_list = "1000,4000,8000,16000";
  std::string out_file = "BENCH_serve.json";
  std::string out_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--keys") {
      num_keys = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--connections") {
      connections = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (arg == "--seconds") {
      seconds = std::strtod(next(), nullptr);
    } else if (arg == "--batch") {
      batch = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--write_ratio") {
      write_ratio = std::strtod(next(), nullptr);
    } else if (arg == "--theta") {
      theta = std::strtod(next(), nullptr);
    } else if (arg == "--deadline_ms") {
      deadline_ms = static_cast<std::uint32_t>(
          std::strtoul(next(), nullptr, 10));
    } else if (arg == "--server_breakdown") {
      server_breakdown = true;
    } else if (arg == "--metrics_out") {
      metrics_out = next();
    } else if (arg == "--qps") {
      qps_list = next();
    } else if (arg == "--out") {
      out_file = next();
    } else if (arg == "--out_dir") {
      out_dir = next();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--keys N] [--connections C] [--seconds S] "
                   "[--batch B] [--qps Q1,Q2,...] [--write_ratio R] "
                   "[--theta T] [--deadline_ms D] [--server_breakdown] "
                   "[--metrics_out FILE] [--out FILE] [--out_dir DIR]\n",
                   argv[0]);
      return 2;
    }
  }
  if (num_keys == 0 || connections <= 0 || batch == 0 || seconds <= 0) {
    std::fprintf(stderr, "bench_serve: invalid arguments\n");
    return 2;
  }

  std::vector<double> sweep;
  for (std::size_t pos = 0; pos < qps_list.size();) {
    const std::size_t comma = qps_list.find(',', pos);
    const std::string token =
        qps_list.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
    if (!token.empty()) sweep.push_back(std::strtod(token.c_str(), nullptr));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }

  const std::filesystem::path root =
      std::filesystem::temp_directory_path() /
      ("cgrx_bench_serve_" + std::to_string(::getpid()));
  std::filesystem::remove_all(root);

  Server::Options options;
  options.root = root;
  options.service_queue_limit = 1024;
  Server server(options);

  // Populate over the wire: update waves of 64k keys [1, num_keys].
  const std::string index = "bench";
  {
    Client loader("localhost", server.port());
    const Client::OpenReply open = loader.OpenIndex(index, "cgrxu");
    if (!open.ok()) {
      std::fprintf(stderr, "bench_serve: open failed: %s\n",
                   open.message.c_str());
      return 1;
    }
    // Few large waves: every wave into a growing cgrxu pays a
    // whole-structure sweep (and, from empty, a rebuild), so the load
    // phase wants wave count low, not wave size small.
    const std::size_t wave = std::max<std::size_t>(65'536, num_keys / 4);
    for (std::size_t lo = 1; lo <= num_keys; lo += wave) {
      const std::size_t hi = std::min(num_keys, lo + wave - 1);
      std::vector<std::uint64_t> keys;
      std::vector<std::uint32_t> rows;
      keys.reserve(hi - lo + 1);
      rows.reserve(hi - lo + 1);
      for (std::size_t k = lo; k <= hi; ++k) {
        keys.push_back(k);
        rows.push_back(static_cast<std::uint32_t>(k & 0xffffff));
      }
      const Client::UpdateReply reply =
          loader.Update(index, std::move(keys), std::move(rows), {});
      if (!reply.ok()) {
        std::fprintf(stderr, "bench_serve: load failed: %s\n",
                     reply.message.c_str());
        return 1;
      }
    }
    loader.Checkpoint(index);
  }
  std::printf("bench_serve: loaded %zu keys over the wire (%d connections, "
              "batch %zu, write_ratio %.2f, theta %.2f)\n",
              num_keys, connections, batch, write_ratio, theta);

  std::vector<Point> points;
  std::vector<std::array<StageCut, cgrx::util::kTraceStageCount>> breakdowns;
  for (const double qps : sweep) {
    const StageSnapshots before =
        server_breakdown ? SnapshotStages() : StageSnapshots{};
    const Point point = RunPoint(server.port(), index, qps, connections,
                                 seconds, batch, write_ratio, num_keys,
                                 theta, deadline_ms);
    if (server_breakdown) {
      breakdowns.push_back(DiffStages(before, SnapshotStages()));
    }
    std::printf("  offered %8.0f rpc/s: achieved %8.0f rpc/s "
                "(%9.0f lookups/s)  p50 %7.1fus  p99 %7.1fus  "
                "p999 %7.1fus  ok %llu rejected %llu errors %llu\n",
                point.offered_qps, point.achieved_qps,
                point.lookups_per_sec, point.p50_us, point.p99_us,
                point.p999_us,
                static_cast<unsigned long long>(point.ok),
                static_cast<unsigned long long>(point.rejected),
                static_cast<unsigned long long>(point.errors));
    if (deadline_ms > 0) {
      const double total = static_cast<double>(
          point.ok + point.rejected + point.errors + point.deadline_exceeded);
      std::printf("      deadline %ums: in-deadline %llu  "
                  "queued-then-late %llu  deadline-exceeded %llu  "
                  "(%.1f%% answered in budget)\n",
                  deadline_ms,
                  static_cast<unsigned long long>(point.ok_in_deadline),
                  static_cast<unsigned long long>(point.ok_late),
                  static_cast<unsigned long long>(point.deadline_exceeded),
                  total == 0 ? 0.0
                             : 100.0 *
                                   static_cast<double>(point.ok_in_deadline) /
                                   total);
    }
    if (server_breakdown) {
      std::printf("      server breakdown (us, mean/p99):");
      const auto& cuts = breakdowns.back();
      for (std::size_t s = 0; s < cuts.size(); ++s) {
        if (cuts[s].count == 0) continue;
        std::printf(" %s %.0f/%.0f",
                    std::string(cgrx::util::TraceStageName(
                                    static_cast<TraceStage>(s)))
                        .c_str(),
                    cuts[s].mean_us, cuts[s].p99_us);
      }
      std::printf("\n");
    }
    points.push_back(point);
  }

  // Overload phase: a server with a tight per-client budget must answer
  // kResourceExhausted quickly, not queue or hang.
  Point overload;
  {
    const std::filesystem::path root2 = root.string() + "_overload";
    std::filesystem::remove_all(root2);
    Server::Options tight;
    tight.root = root2;
    tight.rate_limit_per_client = 100;
    tight.rate_limit_burst = 16;
    Server limited(tight);
    {
      Client setup("localhost", limited.port());
      setup.OpenIndex(index, "cgrxu");
      setup.Update(index, {1, 2, 3}, {1, 2, 3}, {});
    }
    // Offer ~50x the budget; nearly everything must come back as a
    // fast rejection.
    overload = RunPoint(limited.port(), index,
                        5000.0 * connections / 8, connections,
                        std::min(seconds, 1.0), batch, 0.0, 3, theta,
                        /*deadline_ms=*/0);
    std::printf("  overload: ok %llu rejected %llu errors %llu "
                "(rejections must dominate and return fast)\n",
                static_cast<unsigned long long>(overload.ok),
                static_cast<unsigned long long>(overload.rejected),
                static_cast<unsigned long long>(overload.errors));
    limited.Stop();
    std::filesystem::remove_all(root2);
  }

  const std::string scrape = server.MetricsText();
  server.Stop();
  std::filesystem::remove_all(root);

  if (!metrics_out.empty()) {
    std::FILE* mf = std::fopen(metrics_out.c_str(), "w");
    if (mf == nullptr) {
      std::fprintf(stderr, "bench_serve: cannot write %s\n",
                   metrics_out.c_str());
      return 1;
    }
    std::fwrite(scrape.data(), 1, scrape.size(), mf);
    std::fclose(mf);
    std::printf("bench_serve: wrote %s (%zu bytes of /metrics)\n",
                metrics_out.c_str(), scrape.size());
  }

  const std::string path = cgrx::bench::OutputPath::Resolve(out_file,
                                                            out_dir);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_serve: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"serve\",\n  \"keys\": %zu,\n"
               "  \"connections\": %d,\n  \"batch\": %zu,\n"
               "  \"write_ratio\": %g,\n  \"theta\": %g,\n"
               "  \"deadline_ms\": %u,\n"
               "  \"seconds_per_point\": %g,\n  \"points\": [\n",
               num_keys, connections, batch, write_ratio, theta,
               deadline_ms, seconds);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    const double total = static_cast<double>(p.ok + p.rejected + p.errors +
                                             p.deadline_exceeded);
    std::fprintf(f,
                 "    {\"offered_qps\": %g, \"achieved_qps\": %.1f, "
                 "\"lookups_per_sec\": %.1f, \"ok\": %llu, "
                 "\"rejected\": %llu, \"errors\": %llu, "
                 "\"ok_in_deadline\": %llu, \"ok_late\": %llu, "
                 "\"deadline_exceeded\": %llu, "
                 "\"frac_ok_in_deadline\": %.4f, "
                 "\"frac_ok_late\": %.4f, "
                 "\"frac_deadline_exceeded\": %.4f, "
                 "\"p50_us\": %.1f, \"p99_us\": %.1f, "
                 "\"p999_us\": %.1f, \"max_us\": %.1f}%s\n",
                 p.offered_qps, p.achieved_qps, p.lookups_per_sec,
                 static_cast<unsigned long long>(p.ok),
                 static_cast<unsigned long long>(p.rejected),
                 static_cast<unsigned long long>(p.errors),
                 static_cast<unsigned long long>(p.ok_in_deadline),
                 static_cast<unsigned long long>(p.ok_late),
                 static_cast<unsigned long long>(p.deadline_exceeded),
                 total == 0 ? 0.0
                            : static_cast<double>(p.ok_in_deadline) / total,
                 total == 0 ? 0.0 : static_cast<double>(p.ok_late) / total,
                 total == 0
                     ? 0.0
                     : static_cast<double>(p.deadline_exceeded) / total,
                 p.p50_us, p.p99_us, p.p999_us, p.max_us,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"overload\": {\"offered_qps\": %g, "
               "\"ok\": %llu, \"rejected\": %llu, \"errors\": %llu, "
               "\"rejection_p99_us\": %.1f},\n",
               overload.offered_qps,
               static_cast<unsigned long long>(overload.ok),
               static_cast<unsigned long long>(overload.rejected),
               static_cast<unsigned long long>(overload.errors),
               overload.p99_us);
  if (server_breakdown) {
    std::fprintf(f, "  \"server_breakdown\": [\n");
    for (std::size_t i = 0; i < breakdowns.size(); ++i) {
      std::fprintf(f, "    {\"offered_qps\": %g, \"stages\": {",
                   points[i].offered_qps);
      bool first = true;
      for (std::size_t s = 0; s < breakdowns[i].size(); ++s) {
        const StageCut& cut = breakdowns[i][s];
        if (cut.count == 0) continue;
        std::fprintf(f,
                     "%s\"%s\": {\"count\": %llu, \"mean_us\": %.1f, "
                     "\"p99_us\": %.1f}",
                     first ? "" : ", ",
                     std::string(cgrx::util::TraceStageName(
                                     static_cast<TraceStage>(s)))
                         .c_str(),
                     static_cast<unsigned long long>(cut.count),
                     cut.mean_us, cut.p99_us);
        first = false;
      }
      std::fprintf(f, "}}%s\n", i + 1 < breakdowns.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
  }
  std::fprintf(f, "  \"metrics_scrape_bytes\": %zu\n}\n", scrape.size());
  std::fclose(f);
  std::printf("bench_serve: wrote %s\n", path.c_str());
  return 0;
}
