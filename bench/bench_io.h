#ifndef CGRX_BENCH_BENCH_IO_H_
#define CGRX_BENCH_BENCH_IO_H_

#include <filesystem>
#include <string>

#include "src/util/fs.h"

namespace cgrx::bench {

/// Shared output-path policy for the standalone bench binaries: every
/// BENCH_*.json lands under an output directory instead of the working
/// directory (which used to leave stray JSON in the repo root when a
/// bench was run from there).
///
///  * --out_dir DIR  overrides the directory (created if missing).
///  * --out FILE     names the file; a FILE containing a path
///    separator (or an absolute FILE) is used verbatim, bypassing the
///    directory -- which keeps explicit paths working unchanged.
///
/// Default directory: "bench/" when the working directory is a CMake
/// build tree (detected by CMakeCache.txt), else "build/bench/" -- so
/// both `cd build && ./bench_x` and a repo-root invocation write to
/// <build>/bench/, which is gitignored.
class OutputPath {
 public:
  /// Resolves the final path and creates the directory. Call once,
  /// after flag parsing.
  static std::string Resolve(const std::string& out_file,
                             const std::string& out_dir) {
    namespace fs = std::filesystem;
    const fs::path file(out_file);
    if (file.is_absolute() || file.has_parent_path()) {
      return out_file;  // Explicit path: honored verbatim.
    }
    fs::path dir(out_dir);
    if (dir.empty()) {
      dir = fs::exists("CMakeCache.txt") ? fs::path("bench")
                                         : fs::path("build") / "bench";
    }
    // Shared directory-creation policy with the network tier's store
    // roots: failures are reported (a silently missing directory used
    // to surface later as an unwritable JSON path).
    util::EnsureDir(dir);
    return (dir / file).string();
  }
};

}  // namespace cgrx::bench

#endif  // CGRX_BENCH_BENCH_IO_H_
