// Ablation (Section III-A, "Bucket Search"): linear vs binary search on
// row vs column layout, for small and very large buckets. The paper
// finds binary search on the row layout best for both 4-entry and
// 65536-entry buckets and adopts it.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/core/cgrx_index.h"
#include "src/util/workloads.h"

namespace cgrx::bench {

void RegisterFigure() {
  const auto& scale = Scale::Get();
  auto& table = Table(
      "Ablation: bucket search variants, point-lookup time [ms]");
  table.SetColumns({"bucket size", "binary+row", "binary+column",
                    "linear+row", "linear+column"});
  for (const std::uint32_t bucket : {4u, 32u, 256u, 4096u, 65536u}) {
    benchmark::RegisterBenchmark(
        ("AblationBucketSearch/b" + std::to_string(bucket)).c_str(),
        [bucket, &table, &scale](benchmark::State& state) {
          util::KeySetConfig cfg;
          cfg.count = scale.Keys(26);
          cfg.key_bits = 32;
          cfg.uniformity = 1.0;
          const auto keys64 = util::MakeKeySet(cfg);
          std::vector<std::uint32_t> keys(keys64.begin(), keys64.end());
          auto sorted = keys64;
          std::sort(sorted.begin(), sorted.end());
          util::LookupBatchConfig lcfg;
          lcfg.count = scale.Keys(22);
          const auto lookups64 =
              util::MakeLookupBatch(keys64, sorted, 32, lcfg);
          std::vector<std::uint32_t> lookups(lookups64.begin(),
                                             lookups64.end());
          std::vector<std::string> row = {std::to_string(bucket)};
          for (auto _ : state) {
            for (const auto& [algo, layout] :
                 {std::pair{core::BucketSearchAlgo::kBinary,
                            core::BucketLayout::kRow},
                  std::pair{core::BucketSearchAlgo::kBinary,
                            core::BucketLayout::kColumn},
                  std::pair{core::BucketSearchAlgo::kLinear,
                            core::BucketLayout::kRow},
                  std::pair{core::BucketSearchAlgo::kLinear,
                            core::BucketLayout::kColumn}}) {
              core::CgrxConfig config;
              config.bucket_size = bucket;
              config.bucket_search = algo;
              config.bucket_layout = layout;
              core::CgrxIndex32 index(config);
              index.Build(std::vector<std::uint32_t>(keys));
              std::vector<core::LookupResult> results(lookups.size());
              const double ms = MeasureMs([&] {
                index.PointLookupBatch(lookups.data(), lookups.size(),
                                       results.data());
              });
              row.push_back(util::TablePrinter::Num(ms, 1));
              benchmark::DoNotOptimize(results.data());
            }
          }
          table.AddRow(row);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace cgrx::bench
