// Ablation (Section III-B): triangle flipping. Flipped lone
// representatives let the y-ray announce the bucket directly, skipping
// the follow-up x-ray; this bench measures rays per lookup and lookup
// time with the optimization on and off across sparsities.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/core/cgrx_index.h"
#include "src/util/workloads.h"

namespace cgrx::bench {

void RegisterFigure() {
  const auto& scale = Scale::Get();
  auto& table = Table("Ablation: triangle flipping (cgRX, 64-bit)");
  table.SetColumns({"bucket & uniformity", "flip lookup [ms]",
                    "no-flip lookup [ms]", "flip rays/lookup",
                    "no-flip rays/lookup"});
  for (const std::uint32_t bucket : {4u, 32u}) {
    for (const double uniformity : {0.5, 1.0}) {
      const std::string label =
          "b" + std::to_string(bucket) + " & " +
          util::TablePrinter::Num(uniformity * 100, 0) + "%";
      benchmark::RegisterBenchmark(
          ("AblationFlipping/" + label).c_str(),
          [bucket, uniformity, label, &table,
           &scale](benchmark::State& state) {
            util::KeySetConfig cfg;
            cfg.count = scale.Keys(24);
            cfg.key_bits = 64;
            cfg.uniformity = uniformity;
            const auto keys = util::MakeKeySet(cfg);
            auto sorted = keys;
            std::sort(sorted.begin(), sorted.end());
            util::LookupBatchConfig lcfg;
            lcfg.count = scale.Keys(22);
            const auto lookups =
                util::MakeLookupBatch(keys, sorted, 64, lcfg);
            std::vector<std::string> row = {label};
            std::vector<std::string> rays_cols;
            for (auto _ : state) {
              for (const bool flip : {true, false}) {
                core::CgrxConfig config;
                config.bucket_size = bucket;
                config.enable_flipping = flip;
                core::CgrxIndex64 index(config);
                index.Build(std::vector<std::uint64_t>(keys));
                std::vector<core::LookupResult> results(lookups.size());
                const double ms = MeasureMs([&] {
                  index.PointLookupBatch(lookups.data(), lookups.size(),
                                         results.data());
                });
                std::int64_t rays = 0;
                const std::size_t sample =
                    std::min<std::size_t>(4096, lookups.size());
                for (std::size_t i = 0; i < sample; ++i) {
                  int r = 0;
                  index.PointLookup(lookups[i], &r);
                  rays += r;
                }
                row.push_back(util::TablePrinter::Num(ms, 1));
                rays_cols.push_back(util::TablePrinter::Num(
                    static_cast<double>(rays) /
                        static_cast<double>(sample),
                    2));
                benchmark::DoNotOptimize(results.data());
              }
            }
            row.insert(row.end(), rays_cols.begin(), rays_cols.end());
            table.AddRow(row);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace cgrx::bench
