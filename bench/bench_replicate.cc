// Replication bench: follower catch-up throughput and steady-state
// replication lag vs offered write load, over loopback, emitted as
// machine-readable JSON (BENCH_replication.json).
//
// Shape: two in-process servers. Phase 1 loads a primary with --keys
// entries over the wire, then opens a follower bootstrapped from
// empty ("replica:..." backend) and times it to exact epoch parity --
// reported as catch-up MB/s and waves/s (payload bytes, the metric a
// capacity plan needs: how fast a cold standby drains a day of WAL).
// Phase 2 sweeps offered write rates (--qps, waves of --wave_keys
// keys each) against the live tail and samples the follower's
// replication lag from the replication_status verb -- reported as
// mean/max lag in epochs and the applied-wave rate, the
// freshness-vs-throughput curve a bounded-staleness read policy is
// sized from.
//
// Standalone (no google-benchmark dependency) so CI can always build
// and smoke-run it:
//
//   bench_replicate [--keys N] [--waves W] [--qps Q1,Q2,...]
//                   [--seconds S] [--wave_keys K] [--out FILE]
//                   [--out_dir DIR]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "bench/bench_io.h"

#include "src/net/client.h"
#include "src/net/server.h"
#include "src/net/wire.h"

namespace {

using cgrx::net::Client;
using cgrx::net::Server;

using Clock = std::chrono::steady_clock;

struct LagPoint {
  double offered_wps = 0;   // Offered write waves per second.
  double achieved_wps = 0;  // Waves acknowledged by the primary.
  double mean_lag_epochs = 0;
  double max_lag_epochs = 0;
  double final_lag_epochs = 0;
  std::uint64_t samples = 0;
};

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t num_keys = 1'000'000;
  int load_waves = 100;
  std::size_t wave_keys = 200;
  double seconds = 2.0;
  std::string qps_list = "20,100,400";
  std::string out_file = "BENCH_replication.json";
  std::string out_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : "";
    };
    if (arg == "--keys") {
      num_keys = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--waves") {
      load_waves = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (arg == "--wave_keys") {
      wave_keys = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seconds") {
      seconds = std::strtod(next(), nullptr);
    } else if (arg == "--qps") {
      qps_list = next();
    } else if (arg == "--out") {
      out_file = next();
    } else if (arg == "--out_dir") {
      out_dir = next();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--keys N] [--waves W] [--qps Q1,Q2,...] "
                   "[--seconds S] [--wave_keys K] [--out FILE] "
                   "[--out_dir DIR]\n",
                   argv[0]);
      return 2;
    }
  }
  if (num_keys == 0 || load_waves <= 0 || wave_keys == 0 || seconds <= 0) {
    std::fprintf(stderr, "bench_replicate: invalid arguments\n");
    return 2;
  }

  std::vector<double> sweep;
  for (std::size_t pos = 0; pos < qps_list.size();) {
    const std::size_t comma = qps_list.find(',', pos);
    const std::string token =
        qps_list.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
    if (!token.empty()) sweep.push_back(std::strtod(token.c_str(), nullptr));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }

  const std::string suffix = std::to_string(::getpid());
  const std::filesystem::path primary_root =
      std::filesystem::temp_directory_path() / ("cgrx_bench_repl_p" + suffix);
  const std::filesystem::path follower_root =
      std::filesystem::temp_directory_path() / ("cgrx_bench_repl_f" + suffix);
  std::filesystem::remove_all(primary_root);
  std::filesystem::remove_all(follower_root);

  Server::Options primary_options;
  primary_options.root = primary_root;
  primary_options.retain_wal_epochs = ~0ULL >> 1;  // Full history.
  Server primary(primary_options);
  Server::Options follower_options;
  follower_options.root = follower_root;
  Server follower(follower_options);
  const std::string spec =
      "replica:127.0.0.1:" + std::to_string(primary.port()) + "/p";

  // --- Phase 1: load the primary, then time a cold catch-up. --------
  Client feed("localhost", primary.port());
  if (!feed.OpenIndex("p", "btree").ok()) {
    std::fprintf(stderr, "bench_replicate: primary open failed\n");
    return 1;
  }
  const std::size_t per_wave =
      std::max<std::size_t>(1, num_keys / static_cast<std::size_t>(
                                              load_waves));
  std::uint64_t next_key = 1;
  std::uint64_t loaded = 0;
  const Clock::time_point load_start = Clock::now();
  for (int w = 0; w < load_waves; ++w) {
    std::vector<std::uint64_t> keys(per_wave);
    std::vector<std::uint32_t> rows(per_wave);
    for (std::size_t k = 0; k < per_wave; ++k) {
      keys[k] = next_key;
      rows[k] = static_cast<std::uint32_t>(next_key & 0xffffff);
      ++next_key;
    }
    const Client::UpdateReply reply = feed.Update("p", keys, rows, {});
    if (!reply.ok()) {
      std::fprintf(stderr, "bench_replicate: load failed: %s\n",
                   reply.message.c_str());
      return 1;
    }
    loaded += per_wave;
  }
  const double load_seconds = SecondsSince(load_start);
  // Shipped payload per key: u64 key + u32 row (erases absent).
  const double shipped_mb = static_cast<double>(loaded) * 12.0 / 1e6;
  std::printf("bench_replicate: loaded %llu keys in %d waves (%.2fs)\n",
              static_cast<unsigned long long>(loaded), load_waves,
              load_seconds);

  Client reader("localhost", follower.port());
  const Clock::time_point catchup_start = Clock::now();
  if (!reader.OpenIndex("f", spec).ok()) {
    std::fprintf(stderr, "bench_replicate: follower open failed\n");
    return 1;
  }
  const std::uint64_t target = static_cast<std::uint64_t>(load_waves);
  for (;;) {
    const Client::ReplicationStatusReply s = reader.ReplicationStatus("f");
    if (s.ok() && s.epoch >= target) break;
    if (SecondsSince(catchup_start) > 300) {
      std::fprintf(stderr, "bench_replicate: catch-up stalled\n");
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const double catchup_seconds = SecondsSince(catchup_start);
  const double catchup_mb_per_sec = shipped_mb / catchup_seconds;
  const double catchup_waves_per_sec =
      static_cast<double>(load_waves) / catchup_seconds;
  std::printf("  catch-up: %llu epochs / %.1f MB in %.3fs  "
              "(%.1f MB/s, %.0f waves/s)\n",
              static_cast<unsigned long long>(target), shipped_mb,
              catchup_seconds, catchup_mb_per_sec, catchup_waves_per_sec);

  // --- Phase 2: steady-state lag vs offered write rate. -------------
  std::vector<LagPoint> points;
  std::uint64_t epoch_base = target;
  for (const double offered : sweep) {
    LagPoint point;
    point.offered_wps = offered;
    const auto interval = std::chrono::nanoseconds(
        static_cast<std::uint64_t>(1e9 / offered));
    const auto waves_due =
        static_cast<std::uint64_t>(offered * seconds);
    std::uint64_t acked = 0;
    const Clock::time_point start = Clock::now();
    std::thread writer([&] {
      for (std::uint64_t i = 0; i < waves_due; ++i) {
        std::this_thread::sleep_until(start + i * interval);
        std::vector<std::uint64_t> keys(wave_keys);
        std::vector<std::uint32_t> rows(wave_keys);
        for (std::size_t k = 0; k < wave_keys; ++k) {
          keys[k] = next_key;
          rows[k] = static_cast<std::uint32_t>(next_key & 0xffffff);
          ++next_key;
        }
        if (feed.Update("p", keys, rows, {}).ok()) ++acked;
      }
    });
    // Sample lag at ~200 Hz while the writer offers load.
    double lag_sum = 0;
    while (SecondsSince(start) < seconds) {
      const Client::ReplicationStatusReply s = reader.ReplicationStatus("f");
      if (s.ok()) {
        const double lag =
            s.primary_epoch > s.epoch
                ? static_cast<double>(s.primary_epoch - s.epoch)
                : 0.0;
        lag_sum += lag;
        point.max_lag_epochs = std::max(point.max_lag_epochs, lag);
        ++point.samples;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    writer.join();
    const double elapsed = SecondsSince(start);
    point.achieved_wps = static_cast<double>(acked) / elapsed;
    point.mean_lag_epochs =
        point.samples == 0 ? 0 : lag_sum / static_cast<double>(point.samples);
    {
      const Client::ReplicationStatusReply s = reader.ReplicationStatus("f");
      if (s.ok() && s.primary_epoch > s.epoch) {
        point.final_lag_epochs =
            static_cast<double>(s.primary_epoch - s.epoch);
      }
    }
    epoch_base += acked;
    std::printf("  offered %6.0f waves/s: achieved %6.0f  lag mean %6.2f "
                "max %5.0f final %4.0f epochs (%llu samples)\n",
                point.offered_wps, point.achieved_wps,
                point.mean_lag_epochs, point.max_lag_epochs,
                point.final_lag_epochs,
                static_cast<unsigned long long>(point.samples));
    points.push_back(point);
    // Let the follower drain fully so points stay independent.
    const Clock::time_point drain = Clock::now();
    while (SecondsSince(drain) < 30) {
      const Client::ReplicationStatusReply s = reader.ReplicationStatus("f");
      if (s.ok() && s.epoch >= epoch_base) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  follower.Stop();
  primary.Stop();
  std::filesystem::remove_all(primary_root);
  std::filesystem::remove_all(follower_root);

  const std::string path =
      cgrx::bench::OutputPath::Resolve(out_file, out_dir);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_replicate: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"replication\",\n  \"keys\": %llu,\n"
               "  \"load_waves\": %d,\n  \"wave_keys\": %zu,\n"
               "  \"catchup\": {\n"
               "    \"epochs\": %llu,\n    \"shipped_mb\": %.3f,\n"
               "    \"seconds\": %.4f,\n    \"mb_per_sec\": %.2f,\n"
               "    \"waves_per_sec\": %.1f\n  },\n  \"lag_points\": [\n",
               static_cast<unsigned long long>(loaded), load_waves,
               wave_keys, static_cast<unsigned long long>(target),
               shipped_mb, catchup_seconds, catchup_mb_per_sec,
               catchup_waves_per_sec);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const LagPoint& p = points[i];
    std::fprintf(f,
                 "    {\"offered_wps\": %.1f, \"achieved_wps\": %.1f, "
                 "\"mean_lag_epochs\": %.3f, \"max_lag_epochs\": %.1f, "
                 "\"final_lag_epochs\": %.1f, \"samples\": %llu}%s\n",
                 p.offered_wps, p.achieved_wps, p.mean_lag_epochs,
                 p.max_lag_epochs, p.final_lag_epochs,
                 static_cast<unsigned long long>(p.samples),
                 i + 1 == points.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("bench_replicate: wrote %s\n", path.c_str());
  return 0;
}
