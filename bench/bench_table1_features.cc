// Table I: overview of all tested indexes -- which operations each
// supports and its memory class. The table is reproduced from the
// capabilities the api::Index adapters actually report, so it doubles
// as a consistency check between the paper's claims and the code.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/indexes.h"

namespace cgrx::bench {
namespace {

struct FeatureRow {
  std::string name;
  BenchIndex competitor;
  std::string memory_class;
  std::string wide_keys;
  std::string bulk_load;
  std::string updates;
};

}  // namespace

void RegisterFigure() {
  benchmark::RegisterBenchmark("TableI/features", [](benchmark::State&
                                                         state) {
    auto& table = Table("Table I: overview of all tested indexes");
    table.SetColumns({"method", "point", "range", "mem", "64-bit",
                      "bulk-load", "updates"});
    for (auto _ : state) {
      std::vector<FeatureRow> rows;
      rows.push_back({"HT", MakeHt(64), "med", "yes", "no (per-key)",
                      "yes"});
      rows.push_back({"B+", MakeBPlus(), "med", "no", "yes", "yes"});
      rows.push_back({"SA", MakeSa(64), "low", "yes", "yes", "rebuild"});
      rows.push_back({"RX", MakeRx(64), "high", "yes", "yes", "rebuild"});
      rows.push_back({"RTScan (RTc1)", MakeRtScan(64), "high", "limited",
                      "yes", "rebuild"});
      rows.push_back({"cgRX", MakeCgrx(64, 32), "low", "yes", "yes",
                      "rebuild"});
      rows.push_back({"cgRXu", MakeCgrxu(64, 128), "low", "yes", "yes",
                      "yes"});
      for (const FeatureRow& row : rows) {
        const api::Capabilities caps = row.competitor.index.capabilities();
        table.AddRow({row.name, caps.point_lookup ? "yes" : "no",
                      caps.range_lookup ? "yes" : "no", row.memory_class,
                      row.wide_keys, row.bulk_load, row.updates});
      }
    }
  })
      ->Iterations(1);
}

}  // namespace cgrx::bench
