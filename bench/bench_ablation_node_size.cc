// Ablation (Section IV): cgRXu node size. "Nodes have a fixed size N, a
// tuneable parameter that we analyze in our experiments" -- sweep node
// sizes from half a cache line to four cache lines and report bulk-load
// time, update-wave time and post-update lookup time.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/core/cgrxu_index.h"
#include "src/util/rng.h"
#include "src/util/workloads.h"

namespace cgrx::bench {

void RegisterFigure() {
  const auto& scale = Scale::Get();
  auto& table = Table("Ablation: cgRXu node size");
  table.SetColumns({"node bytes", "build [ms]", "insert wave [ms]",
                    "lookup after [ms]", "footprint"});
  for (const std::uint32_t node_bytes : {32u, 64u, 128u, 256u, 512u}) {
    benchmark::RegisterBenchmark(
        ("AblationNodeSize/" + std::to_string(node_bytes)).c_str(),
        [node_bytes, &table, &scale](benchmark::State& state) {
          util::KeySetConfig cfg;
          cfg.count = scale.Keys(26);
          cfg.key_bits = 32;
          cfg.uniformity = 1.0;
          const auto keys64 = util::MakeKeySet(cfg);
          std::vector<std::uint32_t> keys(keys64.begin(), keys64.end());
          auto sorted = keys64;
          std::sort(sorted.begin(), sorted.end());
          util::LookupBatchConfig lcfg;
          lcfg.count = scale.Keys(23);
          const auto lookups64 =
              util::MakeLookupBatch(keys64, sorted, 32, lcfg);
          std::vector<std::uint32_t> lookups(lookups64.begin(),
                                             lookups64.end());
          // Insert wave: 20% new keys.
          util::Rng rng(11);
          std::vector<std::uint32_t> ins;
          std::vector<std::uint32_t> rows;
          for (std::size_t i = 0; i < keys.size() / 5; ++i) {
            ins.push_back(static_cast<std::uint32_t>(rng()));
            rows.push_back(static_cast<std::uint32_t>(keys.size() + i));
          }
          for (auto _ : state) {
            core::CgrxuConfig config;
            config.node_bytes = node_bytes;
            core::CgrxuIndex32 index(config);
            const double build_ms = MeasureMs(
                [&] { index.Build(std::vector<std::uint32_t>(keys)); });
            const double insert_ms =
                MeasureMs([&] { index.InsertBatch(ins, rows); });
            std::vector<core::LookupResult> results(lookups.size());
            const double lookup_ms = MeasureMs([&] {
              index.PointLookupBatch(lookups.data(), lookups.size(),
                                     results.data());
            });
            table.AddRow({std::to_string(node_bytes),
                          util::TablePrinter::Num(build_ms, 1),
                          util::TablePrinter::Num(insert_ms, 1),
                          util::TablePrinter::Num(lookup_ms, 1),
                          util::TablePrinter::Bytes(
                              index.MemoryFootprintBytes())});
            benchmark::DoNotOptimize(results.data());
          }
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace cgrx::bench
