#ifndef CGRX_BENCH_POINT_FIGURE_H_
#define CGRX_BENCH_POINT_FIGURE_H_

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/indexes.h"
#include "src/util/table_printer.h"
#include "src/util/workloads.h"

namespace cgrx::bench {

/// Shared implementation of Figures 12 (32-bit) and 13 (64-bit):
/// memory footprint, accumulated point-lookup time and throughput per
/// memory footprint over build sizes {2^24, 2^26, 2^28} x uniformity
/// {0%, 20%, 100%}.
inline void RegisterPointFigure(int bits, const std::string& figure) {
  const auto& scale = Scale::Get();
  const std::string col_titles[] = {"build size & uniformity"};
  auto& footprint_table = Table(figure + "a: memory footprint");
  auto& time_table = Table(figure + "b: accumulated point-lookup time");
  auto& tpf_table =
      Table(figure + "c: throughput / footprint [entries/(s*B)]");

  std::vector<std::string> columns = {col_titles[0]};
  for (const BenchIndex& competitor : PointCompetitors(bits)) {
    columns.push_back(competitor.name);
  }
  footprint_table.SetColumns(columns);
  time_table.SetColumns(columns);
  tpf_table.SetColumns(columns);

  for (const int log2 : {24, 26, 28}) {
    for (const double uniformity : {0.0, 0.2, 1.0}) {
      const std::string label = std::to_string(log2) + " & " +
                                util::TablePrinter::Num(uniformity * 100, 0) +
                                "%";
      benchmark::RegisterBenchmark(
          (figure + "/" + label).c_str(),
          [bits, log2, uniformity, label, &footprint_table, &time_table,
           &tpf_table, &scale](benchmark::State& state) {
            util::KeySetConfig cfg;
            cfg.count = scale.Keys(log2);
            cfg.key_bits = bits;
            cfg.uniformity = uniformity;
            cfg.seed = 42 + static_cast<std::uint64_t>(log2);
            const auto keys = util::MakeKeySet(cfg);
            auto sorted = keys;
            std::sort(sorted.begin(), sorted.end());
            util::LookupBatchConfig lcfg;
            lcfg.count = scale.PointBatch();
            const auto lookups = util::MakeLookupBatch(keys, sorted, bits,
                                                       lcfg);
            std::vector<std::string> footprint_row = {label};
            std::vector<std::string> time_row = {label};
            std::vector<std::string> tpf_row = {label};
            for (auto _ : state) {
              for (BenchIndex& competitor : PointCompetitors(bits)) {
                competitor.index.Build(keys);
                std::vector<core::LookupResult> results;
                const double ms = MeasureMs([&] {
                  competitor.index.PointLookupBatch(lookups, &results);
                });
                const std::size_t bytes = competitor.index.Stats().memory_bytes;
                footprint_row.push_back(util::TablePrinter::Bytes(bytes));
                time_row.push_back(util::TablePrinter::Num(ms, 1));
                tpf_row.push_back(util::TablePrinter::Num(
                    ThroughputPerFootprint(lookups.size(), ms, bytes), 2));
                benchmark::DoNotOptimize(results.data());
              }
            }
            footprint_table.AddRow(footprint_row);
            time_table.AddRow(time_row);
            tpf_table.AddRow(tpf_row);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace cgrx::bench

#endif  // CGRX_BENCH_POINT_FIGURE_H_
