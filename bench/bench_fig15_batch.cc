// Figure 15: varying the number of point lookups fired in a batch
// (paper: 2^9 .. 2^27). Reports the time per lookup; includes cgRXu in
// both cache-line configurations, matching the paper.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/indexes.h"
#include "src/util/workloads.h"

namespace cgrx::bench {
namespace {

std::vector<BenchIndex> BatchCompetitors() {
  std::vector<BenchIndex> competitors;
  competitors.push_back(MakeCgrx(32, 32));
  competitors.push_back(MakeCgrx(32, 256));
  competitors.push_back(MakeCgrxu(32, 64));
  competitors.push_back(MakeCgrxu(32, 128));
  competitors.push_back(MakeRx(32));
  competitors.push_back(MakeSa(32));
  competitors.push_back(MakeBPlus());
  competitors.push_back(MakeHt(32));
  return competitors;
}

}  // namespace

void RegisterFigure() {
  const auto& scale = Scale::Get();
  auto& table = Table("Fig15: time per lookup [us] vs batch size");
  std::vector<std::string> columns = {"batch size [2^n]"};
  auto competitors =
      std::make_shared<std::vector<BenchIndex>>(BatchCompetitors());
  for (const BenchIndex& competitor : *competitors) {
    columns.push_back(competitor.name);
  }
  table.SetColumns(columns);

  // Build every index once over the shared key set; the batch sweep
  // reuses them (the builds dominate otherwise).
  auto built = std::make_shared<bool>(false);
  auto keys = std::make_shared<std::vector<std::uint64_t>>();

  for (const int batch_log2 : {9, 12, 15, 18, 21, 24, 27}) {
    benchmark::RegisterBenchmark(
        ("Fig15/batch=2^" + std::to_string(batch_log2)).c_str(),
        [batch_log2, &table, &scale, competitors, built,
         keys](benchmark::State& state) {
          if (!*built) {
            util::KeySetConfig cfg;
            cfg.count = scale.Keys(26);
            cfg.key_bits = 32;
            cfg.uniformity = 1.0;
            *keys = util::MakeKeySet(cfg);
            for (BenchIndex& competitor : *competitors) {
              competitor.index.Build(*keys);
            }
            *built = true;
          }
          auto sorted = *keys;
          std::sort(sorted.begin(), sorted.end());
          util::LookupBatchConfig lcfg;
          lcfg.count = std::max<std::size_t>(
              64, (std::size_t{1} << batch_log2) >> scale.shift());
          lcfg.seed = static_cast<std::uint64_t>(batch_log2);
          const auto lookups =
              util::MakeLookupBatch(*keys, sorted, 32, lcfg);
          std::vector<std::string> row = {std::to_string(batch_log2)};
          for (auto _ : state) {
            for (BenchIndex& competitor : *competitors) {
              std::vector<core::LookupResult> results;
              const double ms = MeasureMs([&] {
                competitor.index.PointLookupBatch(lookups, &results);
              });
              row.push_back(util::TablePrinter::Num(
                  ms * 1000.0 / static_cast<double>(lookups.size()), 4));
              benchmark::DoNotOptimize(results.data());
            }
          }
          table.AddRow(row);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace cgrx::bench
