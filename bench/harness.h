#ifndef CGRX_BENCH_HARNESS_H_
#define CGRX_BENCH_HARNESS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "src/core/types.h"
#include "src/util/table_printer.h"
#include "src/util/timer.h"

namespace cgrx::bench {

/// Benchmark scale. The paper's sizes (2^24-2^28 keys, 2^27 lookups)
/// are impractical for a routine CI run of the full suite on a
/// laptop-class host, so by default every experiment is scaled down by
/// a fixed power of two while keeping the paper's 2^n labelling. Set
/// CGRX_BENCH_SCALE=paper for the original sizes, CGRX_BENCH_SCALE=mid
/// for an intermediate setting.
class Scale {
 public:
  /// Singleton initialized from the environment.
  static const Scale& Get();

  /// Key-set size for a paper-scale exponent (e.g. 26 -> 2^26 scaled).
  std::size_t Keys(int log2_paper) const {
    const int e = log2_paper - shift_;
    return std::size_t{1} << (e < 8 ? 8 : e);
  }

  /// Point-lookup batch size (paper: 2^27).
  std::size_t PointBatch() const { return Keys(27); }

  /// Range-lookup batch size (paper: 2^16).
  std::size_t RangeBatch() const { return Keys(16); }

  int shift() const { return shift_; }
  const std::string& name() const { return name_; }

 private:
  Scale();
  int shift_ = 8;
  std::string name_ = "quick";
};

/// Collects the rows of one paper table/figure and prints it when the
/// binary finishes (each bench binary regenerates the series of its
/// figure, as required by the reproduction deliverables).
util::TablePrinter& Table(const std::string& title);

/// Prints all tables registered via Table().
void PrintTables();

/// Wall-clock of `fn` in milliseconds.
double MeasureMs(const std::function<void()>& fn);

/// Type-erased index handle so one benchmark loop can drive every
/// competitor. Unsupported operations are left empty (e.g. HT has no
/// range lookups, RTScan no point lookups), mirroring paper Table I.
struct IndexOps {
  std::string name;
  std::function<void(const std::vector<std::uint64_t>&)> build;
  std::function<void(const std::vector<std::uint64_t>&,
                     std::vector<core::LookupResult>*)>
      point_batch;
  std::function<void(const std::vector<core::KeyRange<std::uint64_t>>&,
                     std::vector<core::LookupResult>*)>
      range_batch;
  /// Incremental (or rebuild, depending on the index) update batches.
  std::function<void(const std::vector<std::uint64_t>&,
                     const std::vector<std::uint32_t>&)>
      insert_batch;
  std::function<void(const std::vector<std::uint64_t>&)> erase_batch;
  std::function<std::size_t()> footprint;
};

/// Wraps a concrete index instance (kept alive via shared_ptr) into
/// IndexOps. The index API contract: Build(vector<Key>),
/// PointLookupBatch(const Key*, n, LookupResult*),
/// RangeLookupBatch(const KeyRange<Key>*, n, LookupResult*),
/// MemoryFootprintBytes().
template <typename Index>
IndexOps Wrap(std::string name, std::shared_ptr<Index> index) {
  using Key = typename Index::KeyType;
  IndexOps ops;
  ops.name = std::move(name);
  ops.build = [index](const std::vector<std::uint64_t>& keys) {
    std::vector<Key> narrow(keys.begin(), keys.end());
    index->Build(std::move(narrow));
  };
  ops.footprint = [index] { return index->MemoryFootprintBytes(); };
  if constexpr (requires(const Index& i, const Key* k,
                         core::LookupResult* r) {
                  i.PointLookupBatch(k, std::size_t{1}, r);
                }) {
    ops.point_batch = [index](const std::vector<std::uint64_t>& keys,
                              std::vector<core::LookupResult>* out) {
      out->resize(keys.size());
      if constexpr (std::is_same_v<Key, std::uint64_t>) {
        index->PointLookupBatch(keys.data(), keys.size(), out->data());
      } else {
        std::vector<Key> narrow(keys.begin(), keys.end());
        index->PointLookupBatch(narrow.data(), narrow.size(), out->data());
      }
    };
  }
  if constexpr (requires(const Index& i, const core::KeyRange<Key>* r,
                         core::LookupResult* o) {
                  i.RangeLookupBatch(r, std::size_t{1}, o);
                }) {
    ops.range_batch =
        [index](const std::vector<core::KeyRange<std::uint64_t>>& ranges,
                std::vector<core::LookupResult>* out) {
          out->resize(ranges.size());
          std::vector<core::KeyRange<Key>> narrow(ranges.size());
          for (std::size_t i = 0; i < ranges.size(); ++i) {
            narrow[i] = {static_cast<Key>(ranges[i].lo),
                         static_cast<Key>(ranges[i].hi)};
          }
          index->RangeLookupBatch(narrow.data(), narrow.size(), out->data());
        };
  }
  if constexpr (requires(Index& i, const std::vector<Key>& k,
                         const std::vector<std::uint32_t>& r) {
                  i.InsertBatch(k, r);
                }) {
    ops.insert_batch = [index](const std::vector<std::uint64_t>& keys,
                               const std::vector<std::uint32_t>& rows) {
      std::vector<Key> narrow(keys.begin(), keys.end());
      index->InsertBatch(narrow, rows);
    };
    ops.erase_batch = [index](const std::vector<std::uint64_t>& keys) {
      std::vector<Key> narrow(keys.begin(), keys.end());
      index->EraseBatch(narrow);
    };
  }
  return ops;
}

/// Throughput-per-footprint metric of the paper (Section V-B): entries
/// looked up per second divided by the footprint in bytes.
double ThroughputPerFootprint(std::size_t lookups, double elapsed_ms,
                              std::size_t footprint_bytes);

}  // namespace cgrx::bench

#endif  // CGRX_BENCH_HARNESS_H_
