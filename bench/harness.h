#ifndef CGRX_BENCH_HARNESS_H_
#define CGRX_BENCH_HARNESS_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/util/table_printer.h"
#include "src/util/timer.h"

namespace cgrx::bench {

/// Benchmark scale. The paper's sizes (2^24-2^28 keys, 2^27 lookups)
/// are impractical for a routine CI run of the full suite on a
/// laptop-class host, so by default every experiment is scaled down by
/// a fixed power of two while keeping the paper's 2^n labelling. Set
/// CGRX_BENCH_SCALE=paper for the original sizes, CGRX_BENCH_SCALE=mid
/// for an intermediate setting.
class Scale {
 public:
  /// Singleton initialized from the environment.
  static const Scale& Get();

  /// Key-set size for a paper-scale exponent (e.g. 26 -> 2^26 scaled).
  std::size_t Keys(int log2_paper) const {
    const int e = log2_paper - shift_;
    return std::size_t{1} << (e < 8 ? 8 : e);
  }

  /// Point-lookup batch size (paper: 2^27).
  std::size_t PointBatch() const { return Keys(27); }

  /// Range-lookup batch size (paper: 2^16).
  std::size_t RangeBatch() const { return Keys(16); }

  int shift() const { return shift_; }
  const std::string& name() const { return name_; }

 private:
  Scale();
  int shift_ = 8;
  std::string name_ = "quick";
};

/// Collects the rows of one paper table/figure and prints it when the
/// binary finishes (each bench binary regenerates the series of its
/// figure, as required by the reproduction deliverables).
util::TablePrinter& Table(const std::string& title);

/// Prints all tables registered via Table().
void PrintTables();

/// Wall-clock of `fn` in milliseconds.
double MeasureMs(const std::function<void()>& fn);

/// Throughput-per-footprint metric of the paper (Section V-B): entries
/// looked up per second divided by the footprint in bytes.
double ThroughputPerFootprint(std::size_t lookups, double elapsed_ms,
                              std::size_t footprint_bytes);

}  // namespace cgrx::bench

#endif  // CGRX_BENCH_HARNESS_H_
