// Figure 12: memory footprint, accumulated point-lookup time and
// throughput per memory footprint for 32-bit keys (key range
// [0, 2^32-1]); competitors cgRX(32), cgRX(256), RX, SA, B+, HT.
#include "bench/point_figure.h"

namespace cgrx::bench {

void RegisterFigure() { RegisterPointFigure(32, "Fig12"); }

}  // namespace cgrx::bench
