// Traversal-engine microbenchmark: cgRX point-lookup batch throughput
// over the {binary, wide} x {unsorted, coherent} matrix, plus per-ray
// node-visit counts and acceleration-structure memory, emitted as
// machine-readable JSON (BENCH_traversal.json).
//
// Standalone (no google-benchmark dependency) so the Release CI job can
// always build and smoke-run it:
//
//   bench_micro_traversal [--keys N] [--lookups M] [--out FILE]
//                         [--out_dir DIR]
//
// Defaults reproduce the acceptance configuration: 10M uniform uint64
// keys, 2M hit-only lookups per cell. The headline speedup is the
// serial-policy ratio binary+unsorted -> wide+coherent.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_io.h"
#include "src/api/execution_policy.h"
#include "src/core/cgrx_index.h"
#include "src/rt/scene.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace {

using cgrx::api::ExecutionPolicy;
using cgrx::core::CgrxConfig;
using cgrx::core::CgrxIndex64;
using cgrx::core::LookupResult;
using cgrx::rt::TraversalEngine;
using cgrx::rt::TraversalStats;
using cgrx::util::Rng;
using cgrx::util::Timer;

struct CellResult {
  const char* engine;
  bool coherent;
  double serial_lookups_per_sec;
  double parallel_lookups_per_sec;
  double rays_per_lookup;
};

double MeasureLookups(const CgrxIndex64& index,
                      const std::vector<std::uint64_t>& probes,
                      std::vector<LookupResult>* results,
                      const ExecutionPolicy& policy) {
  Timer timer;
  index.PointLookupBatch(probes.data(), probes.size(), results->data(),
                         policy);
  const double seconds = timer.ElapsedSeconds();
  return static_cast<double>(probes.size()) / seconds;
}

/// Mean BVH nodes visited by the first lookup ray (the x-ray along the
/// key's row), per engine -- the structural cost the wide layout cuts.
double NodesPerRay(const CgrxIndex64& index,
                   const std::vector<std::uint64_t>& probes,
                   std::size_t sample, TraversalEngine engine) {
  const auto& mapping = index.mapping();
  TraversalStats stats;
  sample = std::min(sample, probes.size());
  for (std::size_t i = 0; i < sample; ++i) {
    const auto g = mapping.GridOf(probes[i]);
    cgrx::rt::Ray ray;
    ray.origin = {mapping.WorldX(g.x) - 0.5f, mapping.WorldY(g.y),
                  mapping.WorldZ(g.z)};
    ray.direction = {1, 0, 0};
    ray.t_min = 0;
    ray.t_max = static_cast<float>(mapping.x_max() - g.x) + 1.0f;
    if (engine == TraversalEngine::kBinary) {
      index.scene().CastRayBinary(ray, &stats);
    } else {
      index.scene().CastRayWide(ray, &stats);
    }
  }
  return sample == 0 ? 0.0
                     : static_cast<double>(stats.nodes_visited) /
                           static_cast<double>(sample);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t num_keys = 10'000'000;
  std::size_t num_lookups = 2'000'000;
  std::string out_file = "BENCH_traversal.json";
  std::string out_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--keys") {
      num_keys = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--lookups") {
      num_lookups = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--out") {
      out_file = next();
    } else if (arg == "--out_dir") {
      out_dir = next();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--keys N] [--lookups M] [--out FILE] "
                   "[--out_dir DIR]\n",
                   argv[0]);
      return 2;
    }
  }
  if (num_keys == 0 || num_lookups == 0) {
    std::fprintf(stderr, "--keys and --lookups must be positive\n");
    return 2;
  }
  const std::string out_path = cgrx::bench::OutputPath::Resolve(out_file,
                                                                out_dir);

  Rng rng(0xb0c4e7);
  std::vector<std::uint64_t> keys(num_keys);
  for (auto& k : keys) k = rng();

  std::printf("building cgRX over %zu uniform uint64 keys...\n", num_keys);
  Timer build_timer;
  CgrxIndex64 index{CgrxConfig{}};
  index.Build(keys);
  const double build_seconds = build_timer.ElapsedSeconds();
  std::printf("build: %.2fs, %zu buckets, footprint %.1f MiB\n",
              build_seconds, index.num_buckets(),
              static_cast<double>(index.MemoryFootprintBytes()) /
                  (1024.0 * 1024.0));

  // Hit-only probe workload (the paper's recommended lookup scenario),
  // drawn uniformly from the key set, in random (incoherent) order.
  std::vector<std::uint64_t> probes(num_lookups);
  for (auto& p : probes) p = keys[rng.Below(num_keys)];
  std::vector<LookupResult> results(num_lookups);

  // Binary MemoryBytes() includes the packed prim-index array; the wide
  // structure shares that array, so report both its node-only bytes
  // (the acceptance metric) and its resident bytes (nodes + shared prim
  // array, matching Scene::MemoryFootprintBytes accounting).
  const std::size_t prim_index_bytes =
      index.scene().bvh().prim_indices().size() * sizeof(std::uint32_t);
  const std::size_t binary_bvh_bytes = index.scene().bvh().MemoryBytes();
  const std::size_t wide_node_bytes = index.scene().bvh4().MemoryBytes();
  const std::size_t wide_resident_bytes = wide_node_bytes + prim_index_bytes;

  struct Cell {
    const char* engine_name;
    TraversalEngine engine;
    bool coherent;
  };
  const Cell cells[] = {
      {"binary", TraversalEngine::kBinary, false},
      {"binary", TraversalEngine::kBinary, true},
      {"wide", TraversalEngine::kWide4, false},
      {"wide", TraversalEngine::kWide4, true},
  };
  std::vector<CellResult> rows;
  for (const Cell& cell : cells) {
    index.set_traversal_engine(cell.engine);
    index.set_coherent_batches(cell.coherent);
    index.ResetStatCounters();
    CellResult row{};
    row.engine = cell.engine_name;
    row.coherent = cell.coherent;
    row.serial_lookups_per_sec =
        MeasureLookups(index, probes, &results, ExecutionPolicy::Serial());
    row.rays_per_lookup =
        static_cast<double>(index.stat_counters().rays_fired.load(
            std::memory_order_relaxed)) /
        static_cast<double>(num_lookups);
    row.parallel_lookups_per_sec =
        MeasureLookups(index, probes, &results, ExecutionPolicy::Parallel());
    rows.push_back(row);
    std::printf(
        "%-6s %-9s  serial %10.0f lookups/s  parallel %10.0f lookups/s  "
        "%.2f rays/lookup\n",
        row.engine, row.coherent ? "coherent" : "unsorted",
        row.serial_lookups_per_sec, row.parallel_lookups_per_sec,
        row.rays_per_lookup);
  }

  const std::size_t node_sample = std::min<std::size_t>(200'000, num_lookups);
  const double nodes_binary =
      NodesPerRay(index, probes, node_sample, TraversalEngine::kBinary);
  const double nodes_wide =
      NodesPerRay(index, probes, node_sample, TraversalEngine::kWide4);

  // Headline acceptance metric: binary+unsorted -> wide+coherent.
  const double serial_speedup =
      rows[3].serial_lookups_per_sec / rows[0].serial_lookups_per_sec;
  const double parallel_speedup =
      rows[3].parallel_lookups_per_sec / rows[0].parallel_lookups_per_sec;
  const double node_ratio = static_cast<double>(wide_node_bytes) /
                            static_cast<double>(binary_bvh_bytes);
  const double resident_ratio = static_cast<double>(wide_resident_bytes) /
                                static_cast<double>(binary_bvh_bytes);
  std::printf(
      "speedup (binary+unsorted -> wide+coherent): serial %.2fx, "
      "parallel %.2fx\n",
      serial_speedup, parallel_speedup);
  std::printf("nodes/ray: binary %.2f, wide %.2f; bvh bytes: binary %zu, "
              "wide nodes %zu (%.0f%%), wide resident %zu (%.0f%%)\n",
              nodes_binary, nodes_wide, binary_bvh_bytes, wide_node_bytes,
              node_ratio * 100.0, wide_resident_bytes,
              resident_ratio * 100.0);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"traversal\",\n");
  std::fprintf(out, "  \"index\": \"cgrx\",\n");
  std::fprintf(out, "  \"key_bits\": 64,\n");
  std::fprintf(out, "  \"keys\": %zu,\n", num_keys);
  std::fprintf(out, "  \"lookups\": %zu,\n", num_lookups);
  std::fprintf(out, "  \"build_seconds\": %.3f,\n", build_seconds);
  std::fprintf(out, "  \"configs\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const CellResult& row = rows[i];
    std::fprintf(out,
                 "    {\"engine\": \"%s\", \"coherent\": %s, "
                 "\"serial_lookups_per_sec\": %.0f, "
                 "\"parallel_lookups_per_sec\": %.0f, "
                 "\"rays_per_lookup\": %.4f}%s\n",
                 row.engine, row.coherent ? "true" : "false",
                 row.serial_lookups_per_sec, row.parallel_lookups_per_sec,
                 row.rays_per_lookup, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"nodes_visited_per_ray\": "
                    "{\"binary\": %.3f, \"wide\": %.3f},\n",
               nodes_binary, nodes_wide);
  std::fprintf(out,
               "  \"bvh_memory_bytes\": {\"binary\": %zu, "
               "\"wide_nodes\": %zu, \"wide_resident\": %zu, "
               "\"ratio\": %.4f, \"resident_ratio\": %.4f},\n",
               binary_bvh_bytes, wide_node_bytes, wide_resident_bytes,
               node_ratio, resident_ratio);
  std::fprintf(out, "  \"speedup_binary_unsorted_to_wide_coherent\": "
                    "{\"serial\": %.4f, \"parallel\": %.4f}\n",
               serial_speedup, parallel_speedup);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
