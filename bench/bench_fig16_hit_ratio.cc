// Figure 16: varying the hit ratio. Point-lookup batches with a given
// percentage of misses, split into misses anywhere in the value range
// and misses outside it; 32-bit keys with uniformity 100%.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/harness.h"
#include "bench/indexes.h"
#include "src/util/workloads.h"

namespace cgrx::bench {

void RegisterFigure() {
  const auto& scale = Scale::Get();
  auto& table =
      Table("Fig16: accumulated point-lookup time [ms] vs miss mix "
            "(anywhere% / out-of-range%)");
  auto competitors =
      std::make_shared<std::vector<BenchIndex>>(PointCompetitors(32));
  std::vector<std::string> columns = {"misses any/oor"};
  for (const BenchIndex& competitor : *competitors) {
    columns.push_back(competitor.name);
  }
  table.SetColumns(columns);

  auto built = std::make_shared<bool>(false);
  auto keys = std::make_shared<std::vector<std::uint64_t>>();
  auto sorted = std::make_shared<std::vector<std::uint64_t>>();

  const std::vector<std::pair<double, double>> mixes = {
      {0.0, 0.0},  {0.01, 0.0}, {0.10, 0.0}, {0.30, 0.0},
      {0.50, 0.0}, {0.70, 0.0}, {0.90, 0.0}, {0.99, 0.0},
      {1.00, 0.0}, {0.5, 0.5},  {0.0, 1.0},
  };
  for (const auto& [anywhere, out_of_range] : mixes) {
    const std::string label =
        util::TablePrinter::Num(anywhere * 100, 0) + "%/" +
        util::TablePrinter::Num(out_of_range * 100, 0) + "%";
    benchmark::RegisterBenchmark(
        ("Fig16/" + label).c_str(),
        [anywhere, out_of_range, label, &table, &scale, competitors, built,
         keys, sorted](benchmark::State& state) {
          if (!*built) {
            util::KeySetConfig cfg;
            cfg.count = scale.Keys(26);
            cfg.key_bits = 32;
            cfg.uniformity = 1.0;
            *keys = util::MakeKeySet(cfg);
            *sorted = *keys;
            std::sort(sorted->begin(), sorted->end());
            for (BenchIndex& competitor : *competitors) {
              competitor.index.Build(*keys);
            }
            *built = true;
          }
          util::LookupBatchConfig lcfg;
          lcfg.count = scale.PointBatch();
          lcfg.miss_anywhere = anywhere;
          lcfg.miss_out_of_range = out_of_range;
          const auto lookups =
              util::MakeLookupBatch(*keys, *sorted, 32, lcfg);
          std::vector<std::string> row = {label};
          for (auto _ : state) {
            for (BenchIndex& competitor : *competitors) {
              std::vector<core::LookupResult> results;
              const double ms = MeasureMs([&] {
                competitor.index.PointLookupBatch(lookups, &results);
              });
              row.push_back(util::TablePrinter::Num(ms, 1));
              benchmark::DoNotOptimize(results.data());
            }
          }
          table.AddRow(row);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace cgrx::bench
