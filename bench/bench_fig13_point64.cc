// Figure 13: memory footprint, accumulated point-lookup time and
// throughput per memory footprint for 64-bit keys (key range
// [0, 2^64-1]); B+ is excluded, matching the paper ("we cannot include
// B+ as it lacks the support for wide keys").
#include "bench/point_figure.h"

namespace cgrx::bench {

void RegisterFigure() { RegisterPointFigure(64, "Fig13"); }

}  // namespace cgrx::bench
