// Figure 18: updates. Bulk-load with 100% uniformity, fire eight
// insertion waves growing the entry count to ~2.2x, then eight deletion
// waves, each followed by a point-lookup batch. Reports (a) the time to
// apply each wave, (b) the update throughput per memory footprint and
// (c) the post-wave lookup time, for cgRX(32)/cgRX(256) [rebuild],
// cgRXu(1 cl), RX [rebuild], B+ and HT.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench/harness.h"
#include "bench/indexes.h"
#include "src/util/rng.h"
#include "src/util/workloads.h"

namespace cgrx::bench {
namespace {

std::vector<BenchIndex> UpdateCompetitors() {
  std::vector<BenchIndex> competitors;
  competitors.push_back(MakeCgrx(32, 32));   // [rebuild]
  competitors.push_back(MakeCgrx(32, 256));  // [rebuild]
  competitors.push_back(MakeCgrxu(32, 128));
  competitors.push_back(MakeRx(32));  // [rebuild]
  competitors.push_back(MakeBPlus());
  competitors.push_back(MakeHt(32, /*load_factor=*/0.4));
  return competitors;
}

std::vector<std::string> CompetitorColumns(const std::string& head) {
  std::vector<std::string> columns = {head,
                                      "cgRX(32)[rebuild]",
                                      "cgRX(256)[rebuild]",
                                      "cgRXu(1 cl)",
                                      "RX[rebuild]",
                                      "B+",
                                      "HT"};
  return columns;
}

}  // namespace

void RegisterFigure() {
  benchmark::RegisterBenchmark("Fig18/waves", [](benchmark::State& state) {
    const auto& scale = Scale::Get();
    auto& apply_table = Table("Fig18a: time to apply update wave [ms]");
    auto& tpf_table =
        Table("Fig18b: update throughput / footprint [entries/(s*B)]");
    auto& lookup_table =
        Table("Fig18c: accumulated point-lookup time after wave [ms]");
    apply_table.SetColumns(CompetitorColumns("wave"));
    tpf_table.SetColumns(CompetitorColumns("wave"));
    lookup_table.SetColumns(CompetitorColumns("wave"));

    const std::size_t n = scale.Keys(26);
    util::KeySetConfig cfg;
    cfg.count = n;
    cfg.key_bits = 32;
    cfg.uniformity = 1.0;
    const auto keys = util::MakeKeySet(cfg);
    std::unordered_set<std::uint64_t> present(keys.begin(), keys.end());

    // Eight insert waves growing the set to 2.2x, i.e. 1.2 n extra keys.
    util::Rng rng(4242);
    std::vector<std::uint64_t> extra;
    while (extra.size() < n * 12 / 10) {
      const std::uint64_t k = rng.Below(0xffffffffULL);
      if (present.insert(k).second) extra.push_back(k);
    }
    const auto insert_waves = util::SplitIntoWaves(extra, 8);
    auto delete_waves = insert_waves;  // Delete what was inserted.
    std::reverse(delete_waves.begin(), delete_waves.end());

    auto competitors = UpdateCompetitors();
    for (auto _ : state) {
      for (BenchIndex& competitor : competitors) {
        competitor.index.Build(keys);
      }

      std::uint32_t next_row = static_cast<std::uint32_t>(n);
      auto run_wave = [&](const std::string& label,
                          const std::vector<std::uint64_t>& wave,
                          bool is_insert) {
        std::vector<std::string> apply_row = {label};
        std::vector<std::string> tpf_row = {label};
        std::vector<std::string> lookup_row = {label};
        std::vector<std::uint32_t> rows(wave.size());
        for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = next_row + i;
        for (BenchIndex& competitor : competitors) {
          const double apply_ms = MeasureMs([&] {
            if (is_insert) {
              competitor.index.InsertBatch(wave, rows);
            } else {
              competitor.index.EraseBatch(wave);
            }
          });
          apply_row.push_back(util::TablePrinter::Num(apply_ms, 1));
          tpf_row.push_back(util::TablePrinter::Num(
              ThroughputPerFootprint(wave.size(), apply_ms,
                                     competitor.index.Stats().memory_bytes),
              3));
          // Post-wave lookup batch over the current key population.
          util::LookupBatchConfig lcfg;
          lcfg.count = scale.PointBatch();
          lcfg.seed = next_row;
          auto sorted_now = keys;  // Hits drawn from the bulk keys.
          std::sort(sorted_now.begin(), sorted_now.end());
          const auto lookups =
              util::MakeLookupBatch(keys, sorted_now, 32, lcfg);
          std::vector<core::LookupResult> results;
          const double lookup_ms = MeasureMs(
              [&] { competitor.index.PointLookupBatch(lookups, &results); });
          lookup_row.push_back(util::TablePrinter::Num(lookup_ms, 1));
          benchmark::DoNotOptimize(results.data());
        }
        next_row += static_cast<std::uint32_t>(wave.size());
        apply_table.AddRow(apply_row);
        tpf_table.AddRow(tpf_row);
        lookup_table.AddRow(lookup_row);
      };

      for (std::size_t w = 0; w < insert_waves.size(); ++w) {
        run_wave(std::to_string(w + 1) + "-insert", insert_waves[w], true);
      }
      for (std::size_t w = 0; w < delete_waves.size(); ++w) {
        run_wave(std::to_string(w + 9) + "-delete", delete_waves[w], false);
      }
    }
  })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);

  // One-sweep-vs-two-sweep mode: the same combined insert+delete waves
  // applied to cgRXu through the wave API (one native bucket sweep) and
  // through the decomposed InsertBatch+EraseBatch path (two sweeps),
  // with the sweep counts read back from IndexStats.
  benchmark::RegisterBenchmark("Fig18/combined-waves", [](benchmark::State&
                                                              state) {
    const auto& scale = Scale::Get();
    auto& table = Table(
        "Fig18d: combined wave, one-sweep vs two-sweep "
        "[apply ms | buckets swept]");
    table.SetColumns({"wave", "cgRXu one-sweep [ms]", "cgRXu two-sweep [ms]",
                      "speedup", "sweeps 1x", "sweeps 2x"});

    const std::size_t n = scale.Keys(26);
    util::KeySetConfig cfg;
    cfg.count = n;
    cfg.key_bits = 32;
    cfg.uniformity = 1.0;
    const auto keys = util::MakeKeySet(cfg);
    std::unordered_set<std::uint64_t> present(keys.begin(), keys.end());

    util::Rng rng(4242);
    std::vector<std::uint64_t> extra;
    while (extra.size() < n) {
      const std::uint64_t k = rng.Below(0xffffffffULL);
      if (present.insert(k).second) extra.push_back(k);
    }
    const auto waves = util::SplitIntoWaves(extra, 8);

    for (auto _ : state) {
      BenchIndex one_sweep = MakeCgrxu(32, 128);
      BenchIndex two_sweep = MakeCgrxu(32, 128);
      one_sweep.index.Build(keys);
      two_sweep.index.Build(keys);

      std::uint32_t next_row = static_cast<std::uint32_t>(n);
      for (std::size_t w = 0; w < waves.size(); ++w) {
        // Wave w inserts fresh keys and retires the previous wave's.
        const std::vector<std::uint64_t>& arrivals = waves[w];
        const std::vector<std::uint64_t> retirements =
            w == 0 ? std::vector<std::uint64_t>{} : waves[w - 1];
        std::vector<std::uint32_t> rows(arrivals.size());
        for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = next_row + i;
        next_row += static_cast<std::uint32_t>(arrivals.size());

        const api::IndexStats one_before = one_sweep.index.Stats();
        const double one_ms = MeasureMs([&] {
          one_sweep.index.UpdateBatch(arrivals, rows, retirements);
        });
        const std::uint64_t one_sweeps =
            one_sweep.index.Stats().Delta(one_before).update_buckets_swept;

        const api::IndexStats two_before = two_sweep.index.Stats();
        const double two_ms = MeasureMs([&] {
          two_sweep.index.InsertBatch(arrivals, rows);
          two_sweep.index.EraseBatch(retirements);
        });
        const std::uint64_t two_sweeps =
            two_sweep.index.Stats().Delta(two_before).update_buckets_swept;

        table.AddRow({std::to_string(w + 1),
                      util::TablePrinter::Num(one_ms, 2),
                      util::TablePrinter::Num(two_ms, 2),
                      util::TablePrinter::Num(
                          one_ms > 0 ? two_ms / one_ms : 0.0, 2) + "x",
                      std::to_string(one_sweeps),
                      std::to_string(two_sweeps)});
      }
    }
  })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
}

}  // namespace cgrx::bench
