// Ablation (DESIGN.md / paper Section II citation of [7]): the BVH
// construction algorithm. The driver's builder is proprietary on real
// hardware; this bench quantifies how builder quality (binned SAH vs
// median split vs Morton/LBVH) affects cgRX build and lookup times.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/core/cgrx_index.h"
#include "src/util/workloads.h"

namespace cgrx::bench {

void RegisterFigure() {
  const auto& scale = Scale::Get();
  auto& table = Table("Ablation: BVH builder quality (cgRX(32), 64-bit)");
  table.SetColumns({"builder & uniformity", "build [ms]", "lookup [ms]",
                    "BVH depth"});
  for (const auto& [builder, name] :
       {std::pair{rt::BvhBuilder::kBinnedSah, "binned-SAH"},
        std::pair{rt::BvhBuilder::kMedianSplit, "median"},
        std::pair{rt::BvhBuilder::kMorton, "morton"}}) {
    for (const double uniformity : {0.0, 1.0}) {
      const std::string label =
          std::string(name) + " & " +
          util::TablePrinter::Num(uniformity * 100, 0) + "%";
      benchmark::RegisterBenchmark(
          ("AblationBvh/" + label).c_str(),
          [builder = builder, label, uniformity, &table,
           &scale](benchmark::State& state) {
            util::KeySetConfig cfg;
            cfg.count = scale.Keys(26);
            cfg.key_bits = 64;
            cfg.uniformity = uniformity;
            const auto keys = util::MakeKeySet(cfg);
            auto sorted = keys;
            std::sort(sorted.begin(), sorted.end());
            util::LookupBatchConfig lcfg;
            lcfg.count = scale.Keys(22);
            const auto lookups =
                util::MakeLookupBatch(keys, sorted, 64, lcfg);
            for (auto _ : state) {
              core::CgrxConfig config;
              config.bucket_size = 32;
              config.bvh_builder = builder;
              core::CgrxIndex64 index(config);
              const double build_ms = MeasureMs(
                  [&] { index.Build(std::vector<std::uint64_t>(keys)); });
              std::vector<core::LookupResult> results(lookups.size());
              const double lookup_ms = MeasureMs([&] {
                index.PointLookupBatch(lookups.data(), lookups.size(),
                                       results.data());
              });
              table.AddRow({label, util::TablePrinter::Num(build_ms, 1),
                            util::TablePrinter::Num(lookup_ms, 1),
                            std::to_string(index.scene().bvh().Depth())});
              benchmark::DoNotOptimize(results.data());
            }
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace cgrx::bench
