// Figure 17: varying the skew of lookups (Zipf coefficient 0 .. 2).
// Reports the accumulated point-lookup time per index.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/indexes.h"
#include "src/util/workloads.h"

namespace cgrx::bench {

void RegisterFigure() {
  const auto& scale = Scale::Get();
  auto& table =
      Table("Fig17: accumulated point-lookup time [ms] vs Zipf coefficient");
  auto competitors =
      std::make_shared<std::vector<BenchIndex>>(PointCompetitors(32));
  std::vector<std::string> columns = {"zipf"};
  for (const BenchIndex& competitor : *competitors) {
    columns.push_back(competitor.name);
  }
  table.SetColumns(columns);

  auto built = std::make_shared<bool>(false);
  auto keys = std::make_shared<std::vector<std::uint64_t>>();
  auto sorted = std::make_shared<std::vector<std::uint64_t>>();

  for (const double theta : {0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75,
                             2.0}) {
    benchmark::RegisterBenchmark(
        ("Fig17/zipf=" + util::TablePrinter::Num(theta, 2)).c_str(),
        [theta, &table, &scale, competitors, built, keys,
         sorted](benchmark::State& state) {
          if (!*built) {
            util::KeySetConfig cfg;
            cfg.count = scale.Keys(26);
            cfg.key_bits = 32;
            cfg.uniformity = 1.0;
            *keys = util::MakeKeySet(cfg);
            *sorted = *keys;
            std::sort(sorted->begin(), sorted->end());
            for (BenchIndex& competitor : *competitors) {
              competitor.index.Build(*keys);
            }
            *built = true;
          }
          util::LookupBatchConfig lcfg;
          lcfg.count = scale.PointBatch();
          lcfg.zipf_theta = theta;
          const auto lookups =
              util::MakeLookupBatch(*keys, *sorted, 32, lcfg);
          std::vector<std::string> row = {util::TablePrinter::Num(theta, 2)};
          for (auto _ : state) {
            for (BenchIndex& competitor : *competitors) {
              std::vector<core::LookupResult> results;
              const double ms = MeasureMs([&] {
                competitor.index.PointLookupBatch(lookups, &results);
              });
              row.push_back(util::TablePrinter::Num(ms, 1));
              benchmark::DoNotOptimize(results.data());
            }
          }
          table.AddRow(row);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace cgrx::bench
