#include "bench/harness.h"

#include <cstdlib>
#include <iostream>
#include <map>

namespace cgrx::bench {

Scale::Scale() {
  const char* env = std::getenv("CGRX_BENCH_SCALE");
  const std::string value = env == nullptr ? "" : env;
  if (value == "paper") {
    shift_ = 0;
    name_ = "paper";
  } else if (value == "mid") {
    shift_ = 4;
    name_ = "mid";
  } else {
    shift_ = 8;
    name_ = "quick";
  }
}

const Scale& Scale::Get() {
  static Scale scale;
  return scale;
}

namespace {
std::map<std::string, util::TablePrinter>& Tables() {
  static std::map<std::string, util::TablePrinter> tables;
  return tables;
}
}  // namespace

util::TablePrinter& Table(const std::string& title) {
  auto it = Tables().find(title);
  if (it == Tables().end()) {
    it = Tables().emplace(title, util::TablePrinter(title)).first;
  }
  return it->second;
}

void PrintTables() {
  std::cout << "\n[scale: " << Scale::Get().name() << ", shift 2^-"
            << Scale::Get().shift()
            << "; paper-scale via CGRX_BENCH_SCALE=paper]\n";
  for (auto& [title, table] : Tables()) table.Print(std::cout);
}

double MeasureMs(const std::function<void()>& fn) {
  util::Timer timer;
  fn();
  return timer.ElapsedMs();
}

double ThroughputPerFootprint(std::size_t lookups, double elapsed_ms,
                              std::size_t footprint_bytes) {
  if (elapsed_ms <= 0 || footprint_bytes == 0) return 0;
  const double per_second =
      static_cast<double>(lookups) / (elapsed_ms / 1000.0);
  return per_second / static_cast<double>(footprint_bytes);
}

}  // namespace cgrx::bench
