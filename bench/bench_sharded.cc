// Serving-layer microbenchmark: ShardedIndex fan-out and combined
// update waves over one backend, emitted as machine-readable JSON
// (BENCH_sharded.json).
//
// For the unsharded baseline and each (scheme, shard count) cell it
// reports build time, point-lookup throughput (serial and
// scheduler-parallel policies), combined-wave update throughput, and a
// correctness check against the unsharded baseline's lookup results.
//
// Sharded cells additionally measure nested parallelism on a *skewed*
// probe batch (every probe lands in the lowest eighth of the key
// space): with serial inner batches -- the pre-scheduler behaviour --
// a skewed batch collapses onto one shard's single thread, while
// parallel inner batches fan the hot shard's work back out over the
// whole scheduler. The serial_inner vs parallel_inner columns quantify
// exactly that.
//
// Standalone (no google-benchmark dependency) so CI can always build
// and smoke-run it:
//
//   bench_sharded [--keys N] [--lookups M] [--wave W] [--backend B]
//                 [--out FILE] [--out_dir DIR]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_io.h"

#include "src/api/execution_policy.h"
#include "src/api/factory.h"
#include "src/api/index.h"
#include "src/api/sharded_index.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace {

using cgrx::api::ExecutionPolicy;
using cgrx::api::IndexOptions;
using cgrx::api::IndexPtr;
using cgrx::api::IndexStats;
using cgrx::api::MakeIndex;
using cgrx::api::ShardScheme;
using cgrx::core::LookupResult;
using cgrx::util::Rng;
using cgrx::util::Timer;

struct CellResult {
  std::string config;       // "unsharded", "range x4", "hash x8", ...
  std::string scheme;       // "none", "range", "hash"
  std::uint32_t shards = 1;
  double build_seconds = 0;
  double serial_lookups_per_sec = 0;
  double parallel_lookups_per_sec = 0;
  // Skewed probe batch under a parallel policy: inner batches serial
  // (old fan-out) vs inner batches parallel (nested on the scheduler).
  double serial_inner_skew_lookups_per_sec = 0;
  double parallel_inner_skew_lookups_per_sec = 0;
  double wave_updates_per_sec = 0;
  std::size_t memory_bytes = 0;
  bool matches_baseline = true;

  double NestedSpeedup() const {
    return serial_inner_skew_lookups_per_sec > 0
               ? parallel_inner_skew_lookups_per_sec /
                     serial_inner_skew_lookups_per_sec
               : 0;
  }
};

double MeasureLookups(const cgrx::api::Index<std::uint64_t>& index,
                      const std::vector<std::uint64_t>& probes,
                      std::vector<LookupResult>* results,
                      const ExecutionPolicy& policy) {
  results->resize(probes.size());
  Timer timer;
  index.PointLookupBatch(probes.data(), probes.size(), results->data(),
                         policy);
  return static_cast<double>(probes.size()) / timer.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t num_keys = 4'000'000;
  std::size_t num_lookups = 1'000'000;
  std::size_t wave_size = 200'000;
  std::string backend = "cgrxu";
  std::string out_file = "BENCH_sharded.json";
  std::string out_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--keys") {
      num_keys = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--lookups") {
      num_lookups = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--wave") {
      wave_size = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--backend") {
      backend = next();
    } else if (arg == "--out") {
      out_file = next();
    } else if (arg == "--out_dir") {
      out_dir = next();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--keys N] [--lookups M] [--wave W] "
                   "[--backend B] [--out FILE] [--out_dir DIR]\n",
                   argv[0]);
      return 2;
    }
  }
  if (num_keys == 0 || num_lookups == 0 || wave_size == 0) {
    std::fprintf(stderr, "--keys, --lookups and --wave must be positive\n");
    return 2;
  }
  const std::string out_path = cgrx::bench::OutputPath::Resolve(out_file,
                                                                out_dir);

  // Distinct keys (even values) so update waves have unambiguous
  // semantics; waves insert odd keys and retire them again.
  std::vector<std::uint64_t> keys(num_keys);
  for (std::size_t i = 0; i < num_keys; ++i) {
    keys[i] = 2 * static_cast<std::uint64_t>(i);
  }
  Rng rng(0x5a4ded);
  for (std::size_t i = num_keys; i > 1; --i) {  // Shuffle the load order.
    std::swap(keys[i - 1], keys[rng.Below(i)]);
  }
  std::vector<std::uint64_t> probes(num_lookups);
  for (auto& p : probes) p = keys[rng.Below(num_keys)];
  // Skewed probes: everything lands in the lowest eighth of the key
  // space, i.e. on one shard under range sharding -- the worst case for
  // a serial-inner fan-out and the showcase for nested parallelism.
  std::vector<std::uint64_t> skew_probes(num_lookups);
  for (auto& p : skew_probes) {
    p = 2 * rng.Below(std::max<std::size_t>(1, num_keys / 8));
  }
  // Wave keys are odd (absent) values strided across the whole key
  // space, so range-sharded waves spread over every shard instead of
  // piling onto the last one.
  std::vector<std::uint64_t> wave_ins(wave_size);
  std::vector<std::uint32_t> wave_rows(wave_size);
  const std::size_t stride = std::max<std::size_t>(1, num_keys / wave_size);
  for (std::size_t i = 0; i < wave_size; ++i) {
    wave_ins[i] = 2 * static_cast<std::uint64_t>(i * stride) + 1;
    wave_rows[i] = static_cast<std::uint32_t>(num_keys + i);
  }

  struct Cell {
    const char* scheme_name;
    ShardScheme scheme;
    std::uint32_t shards;
  };
  const Cell cells[] = {
      {"range", ShardScheme::kRange, 2}, {"range", ShardScheme::kRange, 4},
      {"range", ShardScheme::kRange, 8}, {"hash", ShardScheme::kHash, 2},
      {"hash", ShardScheme::kHash, 4},   {"hash", ShardScheme::kHash, 8},
  };

  std::vector<CellResult> rows;
  std::vector<LookupResult> baseline_results;
  std::vector<LookupResult> scratch;

  auto run_cell = [&](const std::string& label, const std::string& scheme,
                      std::uint32_t shards,
                      const IndexPtr<std::uint64_t>& index) {
    CellResult row;
    row.config = label;
    row.scheme = scheme;
    row.shards = shards;
    Timer build_timer;
    index->Build(std::vector<std::uint64_t>(keys));
    row.build_seconds = build_timer.ElapsedSeconds();
    row.serial_lookups_per_sec =
        MeasureLookups(*index, probes, &scratch, ExecutionPolicy::Serial());
    if (baseline_results.empty()) baseline_results = scratch;
    row.matches_baseline = scratch == baseline_results;
    row.parallel_lookups_per_sec =
        MeasureLookups(*index, probes, &scratch, ExecutionPolicy::Parallel());
    row.matches_baseline =
        row.matches_baseline && scratch == baseline_results;
    if (auto* composite =
            dynamic_cast<cgrx::api::ShardedIndex<std::uint64_t>*>(
                index.get())) {
      std::vector<LookupResult> skew_serial_inner;
      std::vector<LookupResult> skew_parallel_inner;
      composite->set_serial_inner_batches(true);
      row.serial_inner_skew_lookups_per_sec = MeasureLookups(
          *index, skew_probes, &skew_serial_inner, ExecutionPolicy::Parallel());
      composite->set_serial_inner_batches(false);
      row.parallel_inner_skew_lookups_per_sec =
          MeasureLookups(*index, skew_probes, &skew_parallel_inner,
                         ExecutionPolicy::Parallel());
      row.matches_baseline =
          row.matches_baseline && skew_serial_inner == skew_parallel_inner;
    }
    // One combined wave in (insert the odd keys), one wave out (retire
    // them): steady-state churn at constant footprint.
    Timer wave_timer;
    index->UpdateBatch(wave_ins, wave_rows, {});
    index->UpdateBatch({}, {}, wave_ins);
    row.wave_updates_per_sec = static_cast<double>(2 * wave_size) /
                               wave_timer.ElapsedSeconds();
    row.memory_bytes = index->Stats().memory_bytes;
    rows.push_back(row);
    std::printf(
        "%-12s  build %6.2fs  serial %10.0f l/s  parallel %10.0f l/s  "
        "skew-inner %.0f -> %.0f l/s (%.2fx)  waves %10.0f u/s  %s\n",
        label.c_str(), row.build_seconds, row.serial_lookups_per_sec,
        row.parallel_lookups_per_sec, row.serial_inner_skew_lookups_per_sec,
        row.parallel_inner_skew_lookups_per_sec, row.NestedSpeedup(),
        row.wave_updates_per_sec, row.matches_baseline ? "ok" : "MISMATCH");
  };

  std::printf("benchmarking backend \"%s\" over %zu keys, %zu lookups\n",
              backend.c_str(), num_keys, num_lookups);
  run_cell("unsharded", "none", 1, MakeIndex<std::uint64_t>(backend));
  for (const Cell& cell : cells) {
    IndexOptions options;
    options.shard_count = cell.shards;
    options.shard_scheme = cell.scheme;
    run_cell(std::string(cell.scheme_name) + " x" +
                 std::to_string(cell.shards),
             cell.scheme_name, cell.shards,
             MakeIndex<std::uint64_t>("sharded:" + backend, options));
  }

  bool all_match = true;
  for (const CellResult& row : rows) all_match &= row.matches_baseline;

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"sharded\",\n");
  std::fprintf(out, "  \"backend\": \"%s\",\n", backend.c_str());
  std::fprintf(out, "  \"key_bits\": 64,\n");
  std::fprintf(out, "  \"keys\": %zu,\n", num_keys);
  std::fprintf(out, "  \"lookups\": %zu,\n", num_lookups);
  std::fprintf(out, "  \"wave_size\": %zu,\n", wave_size);
  std::fprintf(out, "  \"all_match_baseline\": %s,\n",
               all_match ? "true" : "false");
  std::fprintf(out, "  \"configs\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const CellResult& row = rows[i];
    std::fprintf(
        out,
        "    {\"config\": \"%s\", \"scheme\": \"%s\", \"shards\": %u, "
        "\"build_seconds\": %.3f, \"serial_lookups_per_sec\": %.0f, "
        "\"parallel_lookups_per_sec\": %.0f, "
        "\"serial_inner_skew_lookups_per_sec\": %.0f, "
        "\"parallel_inner_skew_lookups_per_sec\": %.0f, "
        "\"nested_speedup\": %.3f, "
        "\"wave_updates_per_sec\": %.0f, \"memory_bytes\": %zu, "
        "\"matches_baseline\": %s}%s\n",
        row.config.c_str(), row.scheme.c_str(), row.shards,
        row.build_seconds, row.serial_lookups_per_sec,
        row.parallel_lookups_per_sec,
        row.serial_inner_skew_lookups_per_sec,
        row.parallel_inner_skew_lookups_per_sec, row.NestedSpeedup(),
        row.wave_updates_per_sec, row.memory_bytes,
        row.matches_baseline ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return all_match ? 0 : 1;
}
