// Figure 10: naive vs optimized scene representation under the scaled
// key mapping, over uniformity {0, 50, 100}% x key width {32, 64} x
// group size {4, 16, 256, 65536}. Also reports the Section V-A memory
// comparison (the optimized representation saves memory on sparse
// 64-bit sets).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/core/cgrx_index.h"
#include "src/util/workloads.h"

namespace cgrx::bench {
namespace {

template <typename Key>
void RunCell(double uniformity, std::uint32_t group_size,
             util::TablePrinter* time_table,
             util::TablePrinter* memory_table) {
  constexpr int kBits = static_cast<int>(sizeof(Key)) * 8;
  const auto& scale = Scale::Get();
  util::KeySetConfig cfg;
  cfg.count = scale.Keys(26);
  cfg.key_bits = kBits;
  cfg.uniformity = uniformity;
  const auto keys64 = util::MakeKeySet(cfg);
  std::vector<Key> keys(keys64.begin(), keys64.end());
  auto sorted = keys64;
  std::sort(sorted.begin(), sorted.end());
  util::LookupBatchConfig lcfg;
  lcfg.count = scale.PointBatch();
  const auto lookups64 = util::MakeLookupBatch(keys64, sorted, kBits, lcfg);
  std::vector<Key> lookups(lookups64.begin(), lookups64.end());

  const std::string label = util::TablePrinter::Num(uniformity * 100, 0) +
                            "% & " + std::to_string(kBits) + "bit & g" +
                            std::to_string(group_size);
  std::vector<std::string> time_row = {label};
  std::vector<std::string> memory_row = {label};
  for (const core::Representation rep :
       {core::Representation::kNaive, core::Representation::kOptimized}) {
    core::CgrxConfig config;
    config.bucket_size = group_size;
    config.representation = rep;
    core::CgrxIndex<Key> index(config);
    index.Build(std::vector<Key>(keys));
    std::vector<core::LookupResult> results(lookups.size());
    const double ms = MeasureMs([&] {
      index.PointLookupBatch(lookups.data(), lookups.size(),
                             results.data());
    });
    time_row.push_back(util::TablePrinter::Num(ms, 1));
    memory_row.push_back(
        util::TablePrinter::Bytes(index.MemoryFootprintBytes()));
    benchmark::DoNotOptimize(results.data());
  }
  time_table->AddRow(time_row);
  memory_table->AddRow(memory_row);
}

}  // namespace

void RegisterFigure() {
  auto& time_table =
      Table("Fig10: point-lookup time [ms], naive vs optimized");
  time_table.SetColumns({"uniformity & width & group", "naive",
                         "optimized"});
  auto& memory_table =
      Table("Fig10 (Sec V-A): memory footprint, naive vs optimized");
  memory_table.SetColumns({"uniformity & width & group", "naive",
                           "optimized"});
  for (const int bits : {32, 64}) {
    for (const double uniformity : {0.0, 0.5, 1.0}) {
      for (const std::uint32_t group : {4u, 16u, 256u, 65536u}) {
        const std::string name = "Fig10/" + std::to_string(bits) + "bit/u" +
                                 util::TablePrinter::Num(uniformity * 100,
                                                         0) +
                                 "/g" + std::to_string(group);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [bits, uniformity, group, &time_table,
             &memory_table](benchmark::State& state) {
              for (auto _ : state) {
                if (bits == 32) {
                  RunCell<std::uint32_t>(uniformity, group, &time_table,
                                         &memory_table);
                } else {
                  RunCell<std::uint64_t>(uniformity, group, &time_table,
                                         &memory_table);
                }
              }
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
}

}  // namespace cgrx::bench
