// Figure 9 / Section V-A: the impact of scaling the key mapping on the
// BVH structure. With the unscaled mapping the builder groups triangles
// across rows and the unavoidable first x-ray tests many candidates;
// multiplying the y/z coordinates by 2^15 / 2^25 incentivizes row-wise
// bounding volumes. Reported per mapping: accumulated lookup time and
// the average rays per lookup.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/core/cgrx_index.h"
#include "src/util/workloads.h"

namespace cgrx::bench {

void RegisterFigure() {
  const auto& scale = Scale::Get();
  benchmark::RegisterBenchmark("Fig09/scaling", [&scale](benchmark::State&
                                                             state) {
    auto& table = Table(
        "Fig09: unscaled vs scaled key mapping (64-bit uniform keys)");
    table.SetColumns({"mapping", "uniformity", "lookup time [ms]",
                      "avg rays/lookup"});
    for (auto _ : state) {
      for (const double uniformity : {0.5, 1.0}) {
        util::KeySetConfig cfg;
        cfg.count = scale.Keys(24);
        cfg.key_bits = 64;
        cfg.uniformity = uniformity;
        const auto keys = util::MakeKeySet(cfg);
        auto sorted = keys;
        std::sort(sorted.begin(), sorted.end());
        util::LookupBatchConfig lcfg;
        lcfg.count = scale.Keys(22);
        const auto lookups = util::MakeLookupBatch(keys, sorted, 64, lcfg);
        for (const bool scaled : {false, true}) {
          core::CgrxConfig config;
          config.bucket_size = 32;
          config.scaled_mapping = scaled;
          core::CgrxIndex64 index(config);
          index.Build(std::vector<std::uint64_t>(keys));
          std::vector<core::LookupResult> results(lookups.size());
          const double ms = MeasureMs([&] {
            index.PointLookupBatch(lookups.data(), lookups.size(),
                                   results.data());
          });
          // Ray statistics over a sample.
          std::int64_t total_rays = 0;
          const std::size_t sample = std::min<std::size_t>(4096,
                                                           lookups.size());
          for (std::size_t i = 0; i < sample; ++i) {
            int rays = 0;
            index.PointLookup(lookups[i], &rays);
            total_rays += rays;
          }
          table.AddRow({scaled ? "scaled (2^15 y, 2^25 z)" : "unscaled",
                        util::TablePrinter::Num(uniformity * 100, 0) + "%",
                        util::TablePrinter::Num(ms, 1),
                        util::TablePrinter::Num(
                            static_cast<double>(total_rays) /
                                static_cast<double>(sample),
                            2)});
          benchmark::DoNotOptimize(results.data());
        }
      }
    }
  })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
}

}  // namespace cgrx::bench
